//! The incremental engine: full materialization plus scheduler-driven
//! updates over the compiled task graph.
//!
//! This is the end-to-end story of the paper: a base-table edit dirties
//! source nodes; the chosen scheduler (LevelBased, LogicBlox, Hybrid, …)
//! decides which predicate tasks to re-evaluate and when; each task
//! reports which outputs actually changed, so activation cascades exactly
//! as far as the data requires and no further.

use crate::ast::Program;
use crate::eval::{compile_program_with, load_facts, seminaive_scc_opts, CRule};
use crate::fbf::{init_counts_scc, update_scc_fbf, MaintenanceStrategy};
use crate::incr::{reevaluate_scc_opts, update_scc_opts, Delta};
use crate::mvcc::{DbCell, PinRegistry, ReaderHandle, Snapshot};
use crate::par::EvalOptions;
use crate::parser::{parse_program, ParseError};
use crate::query::{parse_pattern, query as run_query};
use crate::rel::{Database, PredId};
use crate::stratify::{stratify, Stratification, StratifyError};
use crate::taskgraph::{NodeKind, TaskGraph};
use crate::value::{Tuple, Value};
use incr_dag::{Dag, NodeId};
use incr_obs::trace;
use incr_sched::{CostMeter, Scheduler};
use std::collections::HashMap;
use std::sync::{Arc, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

/// Engine construction and update errors.
#[derive(Debug)]
pub enum EngineError {
    Parse(ParseError),
    Stratify(StratifyError),
    Edit(String),
    /// The driving scheduler stalled (offered no task while active work
    /// remained). The update was rolled back: the materialization is
    /// exactly what it was before the failed update, and retrying the
    /// same update is idempotent.
    Stall { scheduler: String },
    /// A sharded update batch failed on one shard: that shard panicked,
    /// returned an error, or missed the exchange barrier. Every shard
    /// was rolled back to its pre-batch state and no epoch published —
    /// retrying the batch (with the fault gone) is idempotent. Carries
    /// a multi-shard snapshot taken at abort time for diagnostics.
    ShardFailed {
        /// The shard that failed first (lowest index on ties).
        shard: usize,
        /// 0-based exchange round the failure surfaced in.
        round: usize,
        /// Why the shard failed.
        cause: crate::shard::ShardCause,
        /// Per-shard state at abort: round index, queue depths,
        /// in-flight exchange volume.
        snapshot: Vec<crate::shard::ShardStatus>,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Stratify(e) => write!(f, "{e}"),
            EngineError::Edit(e) => write!(f, "bad edit: {e}"),
            EngineError::Stall { scheduler } => write!(
                f,
                "{scheduler} stalled mid-update; the update was rolled back"
            ),
            EngineError::ShardFailed {
                shard,
                round,
                cause,
                snapshot,
            } => write!(
                f,
                "shard {shard} failed at round {round}: {cause}; \
                 all {} shards rolled back, no epoch published",
                snapshot.len()
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// One base-table edit.
#[derive(Clone, Debug)]
pub enum FactEdit {
    Add { pred: String, args: Vec<String> },
    Remove { pred: String, args: Vec<String> },
}

/// A typed base-table edit: values arrive as [`crate::shard::PortableValue`]
/// instead of strings, so the symbol `"42"` and the integer `42` stay
/// distinct. This is the cross-shard delta-exchange entry point — mirror
/// feeds must not re-parse rendered text.
#[derive(Clone, Debug)]
pub struct TypedEdit {
    pub pred: String,
    pub args: Vec<crate::shard::PortableValue>,
    pub adding: bool,
}

impl FactEdit {
    /// `+pred(a, b)` convenience constructor.
    pub fn add(pred: &str, args: &[&str]) -> FactEdit {
        FactEdit::Add {
            pred: pred.into(),
            args: args.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// `-pred(a, b)` convenience constructor.
    pub fn remove(pred: &str, args: &[&str]) -> FactEdit {
        FactEdit::Remove {
            pred: pred.into(),
            args: args.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// The edited predicate's name.
    pub fn pred_name(&self) -> &str {
        match self {
            FactEdit::Add { pred, .. } | FactEdit::Remove { pred, .. } => pred,
        }
    }

    /// The edit's argument texts.
    pub fn arg_texts(&self) -> &[String] {
        match self {
            FactEdit::Add { args, .. } | FactEdit::Remove { args, .. } => args,
        }
    }
}

/// What one incremental update did.
#[derive(Clone, Debug)]
pub struct UpdateReport {
    /// Tasks the scheduler dispatched (= activated tasks).
    pub tasks_executed: usize,
    /// Edges that fired (carried a non-empty delta).
    pub edges_fired: usize,
    /// Net tuple changes per predicate name.
    pub pred_changes: HashMap<String, (usize, usize)>,
    /// Scheduling cost of the run.
    pub sched_cost: CostMeter,
    /// Execution order of task nodes.
    pub order: Vec<NodeId>,
}

/// A fully materialized Datalog database with scheduler-driven
/// incremental maintenance.
///
/// The database lives behind a shared lock so any number of reader
/// threads can serve [`Snapshot`] queries (via [`Self::reader`]) while
/// updates run: the maintenance loop takes the write lock *per
/// scheduler task*, so readers interleave at task boundaries, and the
/// epoch stamps in [`crate::rel`] guarantee every pinned snapshot keeps
/// reading the last published cut regardless of interleaving. Epochs
/// publish at the committed end of each update batch — never mid-
/// cascade.
pub struct IncrementalEngine {
    db: Arc<DbCell>,
    pins: Arc<PinRegistry>,
    program: Program,
    rules: Vec<CRule>,
    #[allow(dead_code)]
    strat: Stratification,
    graph: TaskGraph,
    /// Per task node: its clique's compiled rules (shared, not re-cloned
    /// on every execution).
    node_rules: Vec<Arc<Vec<CRule>>>,
    /// Evaluation knobs: thread count, parallelism threshold, index mode.
    opts: EvalOptions,
}

impl IncrementalEngine {
    /// Parse, stratify, compile, load facts, and fully materialize with
    /// default options (all available cores, automatic index selection).
    pub fn new(src: &str) -> Result<Self, EngineError> {
        Self::with_options(src, EvalOptions::default())
    }

    /// [`Self::new`] with explicit evaluation options.
    pub fn with_options(src: &str, opts: EvalOptions) -> Result<Self, EngineError> {
        let program = parse_program(src).map_err(EngineError::Parse)?;
        Self::from_program_with_options(program, opts)
    }

    /// Build from an already-parsed program with default options.
    pub fn from_program(program: Program) -> Result<Self, EngineError> {
        Self::from_program_with_options(program, EvalOptions::default())
    }

    /// Build from an already-parsed program.
    pub fn from_program_with_options(
        program: Program,
        opts: EvalOptions,
    ) -> Result<Self, EngineError> {
        Self::from_program_declared(program, opts, &[])
    }

    /// [`Self::from_program_with_options`] plus explicit predicate
    /// declarations. The sharded runtime strips facts out of its
    /// per-shard programs and pre-declares every original predicate (and
    /// every mirror), so edit routing and queries never hit an
    /// unregistered name even when no rewritten rule mentions it.
    pub(crate) fn from_program_declared(
        program: Program,
        opts: EvalOptions,
        declare: &[(String, usize)],
    ) -> Result<Self, EngineError> {
        let strat = stratify(&program).map_err(EngineError::Stratify)?;
        let mut db = Database::new();
        let rules = compile_program_with(&program, &mut db, opts.index_mode);
        load_facts(&program, &mut db);
        for (name, arity) in declare {
            db.pred(name, *arity);
        }
        let graph = TaskGraph::build(&strat, &rules, &db);

        let node_rules = Self::index_node_rules(&graph, &rules);
        // Full materialization happens on the still-private database,
        // then the initial state publishes as epoch 1 — the first cut
        // snapshots can pin.
        for &v in graph.dag.topo_order() {
            if let NodeKind::Clique { preds, .. } = &graph.kinds[v.index()] {
                let rules = node_rules[v.index()].clone();
                seminaive_scc_opts(&mut db, &rules, preds, HashMap::new(), true, &opts);
            }
        }
        // FBF updates rely on exact derivation counts being in place
        // before the first delta arrives (see `crate::fbf`).
        if opts.maintenance == MaintenanceStrategy::Fbf {
            for &v in graph.dag.topo_order() {
                if let NodeKind::Clique { preds, .. } = &graph.kinds[v.index()] {
                    let rules = node_rules[v.index()].clone();
                    init_counts_scc(&mut db, &rules, preds, &opts);
                }
            }
        }
        db.publish(u64::MAX);
        Ok(IncrementalEngine {
            db: Arc::new(DbCell::new(db)),
            pins: Arc::new(PinRegistry::new()),
            program,
            rules,
            strat,
            graph,
            node_rules,
            opts,
        })
    }

    /// The evaluation options in effect.
    pub fn eval_options(&self) -> &EvalOptions {
        &self.opts
    }

    /// Swap the evaluation options. Changing the index mode recompiles
    /// the program (join plans are baked into the rules); switching the
    /// maintenance backend to FBF (re)establishes derivation counts,
    /// which may be stale after a stretch of DRed updates.
    pub fn set_eval_options(&mut self, opts: EvalOptions) {
        let recompile = opts.index_mode != self.opts.index_mode;
        let recount = opts.maintenance == MaintenanceStrategy::Fbf
            && self.opts.maintenance != MaintenanceStrategy::Fbf;
        self.opts = opts;
        if recompile {
            self.rebuild().expect("program unchanged, rebuild cannot fail");
        }
        if recount {
            self.reinit_counts();
        }
    }

    /// Recompute exact derivation counts for every clique — the FBF
    /// recovery primitive. Counts are a pure function of extents and
    /// rules, so this restores consistency after any extent-level
    /// restoration (rollback) or strategy switch.
    fn reinit_counts(&mut self) {
        let mut db = self.db_write();
        for &v in self.graph.dag.topo_order() {
            if let NodeKind::Clique { preds, .. } = &self.graph.kinds[v.index()] {
                let rules = self.node_rules[v.index()].clone();
                init_counts_scc(&mut db, &rules, preds, &self.opts);
            }
        }
    }

    /// Build the per-node rule sets once per (re)compilation.
    fn index_node_rules(graph: &TaskGraph, rules: &[CRule]) -> Vec<Arc<Vec<CRule>>> {
        graph
            .kinds
            .iter()
            .map(|k| match k {
                NodeKind::Base(_) => Arc::new(Vec::new()),
                NodeKind::Clique { rules: idx, .. } => {
                    Arc::new(idx.iter().map(|&i| rules[i].clone()).collect())
                }
            })
            .collect()
    }

    /// Shared read access to the head database (poison-recovering and
    /// writer-deferring; see [`DbCell`]).
    fn db_read(&self) -> RwLockReadGuard<'_, Database> {
        self.db.read()
    }

    /// Exclusive write access to the head database. Backs concurrent
    /// snapshot readers off while acquiring, so a read-heavy load
    /// cannot starve the maintenance loop.
    fn db_write(&self) -> RwLockWriteGuard<'_, Database> {
        self.db.write()
    }

    /// The live (head) database, read-locked for the guard's lifetime.
    /// Hold it briefly — an update cannot start while guards are out.
    pub fn database(&self) -> RwLockReadGuard<'_, Database> {
        self.db_read()
    }

    /// A cloneable, `Send + Sync` handle reader threads use to open
    /// snapshots while this engine keeps updating.
    pub fn reader(&self) -> ReaderHandle {
        ReaderHandle::new(self.db.clone(), self.pins.clone())
    }

    /// Pin the last published epoch and return a consistent read view.
    /// Equivalent to `self.reader().snapshot()`.
    pub fn begin_snapshot(&self) -> Snapshot {
        self.reader().snapshot()
    }

    /// The last published epoch.
    pub fn epoch(&self) -> u64 {
        self.db_read().epoch()
    }

    /// Commit the open epoch at a batch boundary: bump the published
    /// epoch, vacuum tombstones past the snapshot watermark, and export
    /// the `mvcc.*` observability set.
    fn publish(&mut self) {
        let t0 = Instant::now();
        let mut db = self.db_write();
        let epoch = db.publish(self.pins.min_pinned());
        let retained = db.rows_retained();
        drop(db);
        let reg = incr_obs::registry();
        reg.gauge("mvcc.epoch").set(epoch as i64);
        reg.gauge("mvcc.pinned_epochs")
            .set(self.pins.pinned_count() as i64);
        reg.gauge("mvcc.rows_retained").set(retained as i64);
        reg.counter("mvcc.publish_ns")
            .add(t0.elapsed().as_nanos() as u64);
    }

    /// The scheduling DAG of the program.
    pub fn dag(&self) -> &Arc<Dag> {
        &self.graph.dag
    }

    /// The task graph (node kinds, predicate mapping).
    pub fn task_graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// Does `pred(args…)` hold (symbols only)?
    pub fn has(&self, pred: &str, args: &[&str]) -> bool {
        self.db_read().has_fact(pred, args)
    }

    /// Number of tuples in `pred`.
    pub fn count(&self, pred: &str) -> usize {
        let db = self.db_read();
        db.pred_id(pred).map_or(0, |p| db.rel(p).len())
    }

    /// Apply base-table edits, driving re-derivation with `scheduler`.
    pub fn update(
        &mut self,
        scheduler: &mut dyn Scheduler,
        edits: &[FactEdit],
    ) -> Result<UpdateReport, EngineError> {
        self.update_full(scheduler, edits, &[], true, None, None)
    }

    /// The general update entry: string edits plus typed edits, with an
    /// explicit publish decision and optional per-predicate net-delta
    /// collection.
    ///
    /// * `publish: false` leaves the epoch open — the sharded runtime
    ///   suppresses per-round publishes and commits one epoch per batch
    ///   across all shards, so snapshots stay consistent cuts.
    /// * `collect` receives the update's net delta per predicate (each
    ///   task node executes at most once per update, so the per-node
    ///   output deltas *are* the nets). On a failed (rolled back) update
    ///   the map's contents are meaningless and must be discarded.
    /// * `undo_out` receives, on **success**, the update's full undo log
    ///   (base edits first, then clique outputs in execution order).
    ///   Replaying it in reverse via [`Self::rollback_batch`] restores
    ///   the pre-update state — the sharded runtime stages these across
    ///   exchange rounds so a failed batch can roll back every shard.
    ///   On failure the log was already consumed by the internal
    ///   rollback and nothing is appended.
    pub(crate) fn update_full(
        &mut self,
        scheduler: &mut dyn Scheduler,
        edits: &[FactEdit],
        typed: &[TypedEdit],
        publish: bool,
        collect: Option<&mut HashMap<PredId, Delta>>,
        undo_out: Option<&mut Vec<(PredId, Delta)>>,
    ) -> Result<UpdateReport, EngineError> {
        // 1. Apply edits to base relations, collecting net deltas. The
        // write lock is scoped to this phase so readers interleave
        // before the cascade starts.
        let mut base_deltas: HashMap<PredId, Delta> = HashMap::new();
        {
            let mut db = self.db_write();
            for e in edits {
                let (pred, args, adding) = match e {
                    FactEdit::Add { pred, args } => (pred, args, true),
                    FactEdit::Remove { pred, args } => (pred, args, false),
                };
                let id = Self::base_pred(&db, &self.graph, pred, args.len())?;
                let tuple: Tuple = args
                    .iter()
                    .map(|a| match a.parse::<i64>() {
                        Ok(i) => Value::Int(i),
                        Err(_) => db.sym(a),
                    })
                    .collect();
                Self::apply_one(&mut db, &mut base_deltas, id, tuple, adding);
            }
            for e in typed {
                let id = Self::base_pred(&db, &self.graph, &e.pred, e.args.len())?;
                let tuple: Tuple = e.args.iter().map(|v| v.intern(&mut db)).collect();
                Self::apply_one(&mut db, &mut base_deltas, id, tuple, e.adding);
            }
        }

        // 2. Initially-dirty source nodes. Declared-only predicates (no
        // rule mentions them, so no task node) change silently: the edit
        // is in the relation, nothing downstream can read it.
        let initial: Vec<NodeId> = base_deltas
            .iter()
            .filter(|(_, d)| !d.is_empty())
            .filter_map(|(p, _)| self.graph.node_of_pred.get(p).copied())
            .collect();

        // 3. Drive the scheduler. The base edits applied in step 1 seed
        // the undo log, so a failed drive rolls them back too and the
        // whole update is atomic.
        let undo: Vec<(PredId, Delta)> = base_deltas
            .iter()
            .filter(|(_, d)| !d.is_empty())
            .map(|(p, d)| (*p, d.clone()))
            .collect();
        let report = self.drive(
            scheduler,
            &initial,
            base_deltas,
            HashMap::new(),
            undo,
            collect,
            undo_out,
        )?;
        // 4. Committed: publish the new epoch — the one point where
        // concurrent snapshots start seeing this update's effects. A
        // failed drive already rolled back and publishes nothing, so
        // the last published cut stays the pre-update state.
        if publish {
            self.publish();
        }
        Ok(report)
    }

    /// Resolve and validate an editable (base) predicate.
    fn base_pred(
        db: &Database,
        graph: &TaskGraph,
        pred: &str,
        arity: usize,
    ) -> Result<PredId, EngineError> {
        let id = db
            .pred_id(pred)
            .ok_or_else(|| EngineError::Edit(format!("unknown predicate {pred}")))?;
        if db.rel(id).arity() != arity {
            return Err(EngineError::Edit(format!(
                "{pred} has arity {}, edit has {}",
                db.rel(id).arity(),
                arity
            )));
        }
        // Declared-only predicates have no task node; they are trivially
        // base (nothing derives into them).
        if let Some(node) = graph.node_of_pred.get(&id) {
            if !matches!(graph.kinds[node.index()], NodeKind::Base(_)) {
                return Err(EngineError::Edit(format!(
                    "{pred} is a derived predicate; only base tables can be edited"
                )));
            }
        }
        Ok(id)
    }

    /// Apply one tuple edit and fold it into the running net delta.
    fn apply_one(
        db: &mut Database,
        base_deltas: &mut HashMap<PredId, Delta>,
        id: PredId,
        tuple: Tuple,
        adding: bool,
    ) {
        let d = base_deltas.entry(id).or_default();
        if adding {
            if db.rel_mut(id).insert(tuple.clone()) && !d.removed.remove(&tuple) {
                d.added.insert(tuple);
            }
        } else if db.rel_mut(id).remove(&tuple) && !d.added.remove(&tuple) {
            d.removed.insert(tuple);
        }
    }

    /// Commit the open epoch across a batch boundary (sharded runtime's
    /// batch-end publish point). Equivalent to the publish every
    /// [`Self::update`] performs.
    pub(crate) fn publish_now(&mut self) {
        self.publish();
    }

    /// Queue one logical update's edits into `q`, coalescing against the
    /// live base tables ([`crate::stream::DeltaQueue`] keeps the exact net
    /// diff: restoring edits cancel queued opposites, re-stating edits
    /// drop). Validation (predicate exists, arity, base-only) happens
    /// here, so a later [`Self::apply_queue`] cannot fail on edit shape.
    pub fn enqueue(
        &mut self,
        q: &mut crate::stream::DeltaQueue,
        edits: &[FactEdit],
    ) -> Result<(), EngineError> {
        let mut db = self.db_write();
        for e in edits {
            let (pred, args) = match e {
                FactEdit::Add { pred, args } | FactEdit::Remove { pred, args } => (pred, args),
            };
            let id = Self::base_pred(&db, &self.graph, pred, args.len())?;
            let tuple: Tuple = args
                .iter()
                .map(|a| match a.parse::<i64>() {
                    Ok(i) => Value::Int(i),
                    Err(_) => db.sym(a),
                })
                .collect();
            let present = db.rel(id).contains(&tuple);
            q.push_with_presence(e.clone(), present);
        }
        q.end_update();
        Ok(())
    }

    /// Drain the queue's net delta and apply it as **one** update — one
    /// scheduler `start`, one DRed cascade, for however many logical
    /// updates were absorbed. On failure (scheduler stall) the engine has
    /// already rolled the database back, and the drained edits are
    /// re-queued so no queued change is lost.
    pub fn apply_queue(
        &mut self,
        scheduler: &mut dyn Scheduler,
        q: &mut crate::stream::DeltaQueue,
    ) -> Result<UpdateReport, EngineError> {
        let (edits, updates) = q.drain();
        if updates > 1 {
            incr_obs::registry()
                .counter("datalog.coalesce.updates_merged")
                .add(updates as u64 - 1);
        }
        match self.update(scheduler, &edits) {
            Ok(report) => Ok(report),
            Err(err) => {
                // Rollback restored the base tables, so re-queuing against
                // current membership reproduces the pre-drain queue.
                let mut db = self.db_write();
                for e in &edits {
                    let id = db.pred_id(e.pred_name()).expect("validated at enqueue");
                    let tuple: Tuple = e
                        .arg_texts()
                        .iter()
                        .map(|a| match a.parse::<i64>() {
                            Ok(i) => Value::Int(i),
                            Err(_) => db.sym(a),
                        })
                        .collect();
                    let present = db.rel(id).contains(&tuple);
                    q.push_with_presence(e.clone(), present);
                }
                for _ in 0..updates {
                    q.end_update();
                }
                Err(err)
            }
        }
    }

    /// The scheduler-driven propagation loop shared by fact updates and
    /// rule changes. `base_deltas` are consumed by base nodes when popped;
    /// `preset` short-circuits a node's execution with a precomputed
    /// output delta (used by rule changes, whose head clique is
    /// re-evaluated before propagation starts).
    ///
    /// `undo` seeds the undo log with deltas the *caller* already applied
    /// to the database (base edits, preset re-evaluations); every clique
    /// execution appends its own net deltas. If the scheduler stalls, the
    /// log is replayed in reverse — added tuples removed, removed tuples
    /// re-inserted — restoring the materialization bit-for-bit to its
    /// pre-update state before returning [`EngineError::Stall`], so a
    /// failed update rolls back atomically and retrying it (with a
    /// working scheduler) is idempotent.
    #[allow(clippy::too_many_arguments)]
    fn drive(
        &mut self,
        scheduler: &mut dyn Scheduler,
        initial: &[NodeId],
        mut base_deltas: HashMap<PredId, Delta>,
        mut preset: HashMap<NodeId, HashMap<PredId, Delta>>,
        mut undo: Vec<(PredId, Delta)>,
        mut collect: Option<&mut HashMap<PredId, Delta>>,
        undo_out: Option<&mut Vec<(PredId, Delta)>>,
    ) -> Result<UpdateReport, EngineError> {
        let mut pending: Vec<HashMap<PredId, Delta>> =
            vec![HashMap::new(); self.graph.dag.node_count()];
        let mut edges_fired = 0usize;
        let mut order = Vec::new();
        let mut pred_changes: HashMap<String, (usize, usize)> = HashMap::new();

        scheduler.start(initial);
        while let Some(node) = scheduler.pop_ready() {
            order.push(node);
            // One write-lock tenure per scheduler task: between tasks
            // the lock is free, so snapshot readers make progress while
            // a long cascade runs. Isolation does not depend on this —
            // epoch stamps keep pinned readers on the published cut —
            // it only bounds reader latency.
            let mut db = self.db_write();
            // Per-stratum task span: the node's level in the task DAG is
            // its stratum, so one trace row per predicate-clique
            // evaluation, labelled with what was evaluated.
            let task_span = trace::enabled().then(|| {
                trace::span_with(
                    "datalog",
                    format!("eval {}", self.graph.label(node, &db)),
                    vec![
                        ("node", (node.0 as u64).into()),
                        ("stratum", (self.graph.dag.level(node) as u64).into()),
                    ],
                )
            });
            // Execute the task: produce this node's output deltas.
            let out: HashMap<PredId, Delta> = if let Some(out) = preset.remove(&node) {
                out
            } else {
                match &self.graph.kinds[node.index()] {
                    NodeKind::Base(p) => {
                        let d = base_deltas.remove(p).unwrap_or_default();
                        HashMap::from([(*p, d)])
                    }
                    NodeKind::Clique { preds, .. } => {
                        let rules = self.node_rules[node.index()].clone();
                        let input = std::mem::take(&mut pending[node.index()]);
                        let out = if rules.iter().any(|r| r.agg.is_some()) {
                            // Aggregate cliques cannot be delta-pinned: a
                            // single input tuple can change a whole group's
                            // fold. Their inputs are final here, so a full
                            // re-evaluation against the live database is
                            // both correct and exact.
                            reevaluate_scc_opts(&mut db, &rules, preds, &self.opts)
                        } else {
                            match self.opts.maintenance {
                                MaintenanceStrategy::DRed => {
                                    update_scc_opts(&mut db, &rules, preds, &input, &self.opts)
                                }
                                MaintenanceStrategy::Fbf => {
                                    update_scc_fbf(&mut db, &rules, preds, &input, &self.opts)
                                }
                            }
                        };
                        // The clique just mutated the database by these net
                        // deltas; log them so a failed update can roll back.
                        // (Base and preset deltas arrive pre-seeded in
                        // `undo` — recording them here would double them.)
                        for (p, d) in &out {
                            if !d.is_empty() {
                                undo.push((*p, d.clone()));
                            }
                        }
                        out
                    }
                }
            };
            for (p, d) in &out {
                if !d.is_empty() {
                    let e = pred_changes
                        .entry(db.pred_name(*p).to_string())
                        .or_insert((0, 0));
                    e.0 += d.added.len();
                    e.1 += d.removed.len();
                    if let Some(c) = collect.as_deref_mut() {
                        let net = c.entry(*p).or_default();
                        for t in &d.added {
                            if !net.removed.remove(t) {
                                net.added.insert(t.clone());
                            }
                        }
                        for t in &d.removed {
                            if !net.added.remove(t) {
                                net.removed.insert(t.clone());
                            }
                        }
                    }
                }
            }
            drop(db);
            // Fire children whose read-set saw a change.
            let mut fired: Vec<NodeId> = Vec::new();
            for &child in self.graph.dag.children(node) {
                let reads = &self.graph.reads[child.index()];
                let mut any = false;
                for (p, d) in &out {
                    if !d.is_empty() && reads.contains(p) {
                        any = true;
                        pending[child.index()].insert(*p, d.clone());
                    }
                }
                if any {
                    fired.push(child);
                    edges_fired += 1;
                }
            }
            if let Some(s) = task_span {
                let changed: usize = out.values().map(Delta::len).sum();
                s.end_args(vec![
                    ("changed_tuples", changed.into()),
                    ("fired", fired.len().into()),
                ]);
            }
            scheduler.on_completed(node, &fired);
        }
        if !scheduler.is_quiescent() {
            self.rollback(undo);
            return Err(EngineError::Stall {
                scheduler: scheduler.name().to_string(),
            });
        }
        if let Some(out) = undo_out {
            out.append(&mut undo);
        }

        Ok(UpdateReport {
            tasks_executed: order.len(),
            edges_fired,
            pred_changes,
            sched_cost: scheduler.cost(),
            order,
        })
    }

    /// Roll back a *batch* of committed-but-unpublished updates using
    /// the undo logs returned through `update_full`'s `undo_out`. The
    /// sharded runtime concatenates each round's log in order and hands
    /// the whole thing back here when any sibling shard fails — reverse
    /// replay restores this engine's pre-batch state exactly, and since
    /// nothing was published, pinned snapshots never saw the batch.
    pub(crate) fn rollback_batch(&mut self, undo: Vec<(PredId, Delta)>) {
        self.rollback(undo);
    }

    /// Undo every applied delta in reverse order: tuples an update added
    /// are removed, tuples it removed are re-inserted. Deltas are *net*
    /// per application (a tuple is never both added and removed within
    /// one entry), so reverse replay restores the exact prior contents.
    fn rollback(&mut self, undo: Vec<(PredId, Delta)>) {
        let _span = trace::span("datalog", "update.rollback");
        let mut db = self.db_write();
        for (p, d) in undo.into_iter().rev() {
            let rel = db.rel_mut(p);
            for t in &d.added {
                rel.remove(t);
            }
            for t in &d.removed {
                rel.insert(t.clone());
            }
        }
        drop(db);
        // FBF derivation counts are not part of the undo log (a count
        // can change without any extent change, e.g. a decrement that
        // saved a deletion). They are a pure function of the restored
        // extents, so a recount makes recovery exact — and idempotent,
        // since recounting twice is a no-op.
        if self.opts.maintenance == MaintenanceStrategy::Fbf {
            self.reinit_counts();
        }
    }

    /// Rebuild stratification, compiled rules, and the task graph after a
    /// program change, keeping the database contents.
    fn rebuild(&mut self) -> Result<(), EngineError> {
        let strat = stratify(&self.program).map_err(EngineError::Stratify)?;
        let mut db = self.db_write();
        let rules = compile_program_with(&self.program, &mut db, self.opts.index_mode);
        let graph = TaskGraph::build(&strat, &rules, &db);
        drop(db);
        self.node_rules = Self::index_node_rules(&graph, &rules);
        self.strat = strat;
        self.rules = rules;
        self.graph = graph;
        Ok(())
    }

    /// Add a rule to the program and incrementally update the
    /// materialization ("the rule definitions change", §I). The head's
    /// clique is re-evaluated against its unchanged inputs; the net delta
    /// then propagates downstream under `make_sched`'s scheduler, built
    /// over the *new* task DAG.
    ///
    /// Ground facts are rejected — route those through [`Self::update`].
    pub fn add_rule(
        &mut self,
        rule_text: &str,
        make_sched: impl FnOnce(Arc<Dag>) -> Box<dyn Scheduler>,
    ) -> Result<UpdateReport, EngineError> {
        let parsed = parse_program(rule_text).map_err(EngineError::Parse)?;
        if parsed.rules.len() != 1 {
            return Err(EngineError::Edit(
                "add_rule takes exactly one clause".into(),
            ));
        }
        let rule = parsed.rules.into_iter().next().expect("one clause");
        if rule.is_fact() {
            return Err(EngineError::Edit(
                "ground facts go through update(), not add_rule()".into(),
            ));
        }
        self.program.rules.push(rule.clone());
        // The whole program must still be consistent (arity clashes with
        // existing predicates, stratifiability).
        self.program
            .predicate_arities()
            .map_err(EngineError::Edit)?;
        if let Err(e) = self.rebuild() {
            self.program.rules.pop();
            self.rebuild().expect("previous program was valid");
            return Err(e);
        }
        self.propagate_rule_change(&rule.head.pred, make_sched)
    }

    /// Remove a rule (matched by textual equality after parsing) and
    /// incrementally update the materialization.
    pub fn remove_rule(
        &mut self,
        rule_text: &str,
        make_sched: impl FnOnce(Arc<Dag>) -> Box<dyn Scheduler>,
    ) -> Result<UpdateReport, EngineError> {
        let parsed = parse_program(rule_text).map_err(EngineError::Parse)?;
        if parsed.rules.len() != 1 {
            return Err(EngineError::Edit(
                "remove_rule takes exactly one clause".into(),
            ));
        }
        let rule = parsed.rules.into_iter().next().expect("one clause");
        let Some(pos) = self.program.rules.iter().position(|r| *r == rule) else {
            return Err(EngineError::Edit(format!(
                "no such rule in the program: {rule}"
            )));
        };
        self.program.rules.remove(pos);
        if let Err(e) = self.rebuild() {
            self.program.rules.insert(pos, rule);
            self.rebuild().expect("previous program was valid");
            return Err(e);
        }
        self.propagate_rule_change(&rule.head.pred, make_sched)
    }

    /// Re-evaluate the changed head's clique and propagate its net delta.
    fn propagate_rule_change(
        &mut self,
        head_pred: &str,
        make_sched: impl FnOnce(Arc<Dag>) -> Box<dyn Scheduler>,
    ) -> Result<UpdateReport, EngineError> {
        let head = {
            let db = self.db_read();
            db.pred_id(head_pred).expect("head registered by rebuild")
        };
        let Some(&node) = self.graph.node_of_pred.get(&head) else {
            // The predicate vanished from the program entirely (its last
            // rule removed and nothing else mentions it): clear leftovers
            // tuple-by-tuple — tombstones, not a wholesale relation swap,
            // so pinned snapshots keep reading the old extent until the
            // next publish vacuums past them.
            let mut db = self.db_write();
            let doomed = db.rel(head).sorted();
            let removed = doomed.len();
            for t in &doomed {
                db.rel_mut(head).remove(t);
            }
            drop(db);
            self.publish();
            let mut pred_changes = HashMap::new();
            if removed > 0 {
                pred_changes.insert(head_pred.to_string(), (0, removed));
            }
            return Ok(UpdateReport {
                tasks_executed: 0,
                edges_fired: 0,
                pred_changes,
                sched_cost: CostMeter::default(),
                order: Vec::new(),
            });
        };
        let out = {
            let mut db = self.db_write();
            match &self.graph.kinds[node.index()] {
                NodeKind::Clique { preds, .. } => {
                    let rules = self.node_rules[node.index()].clone();
                    let out = reevaluate_scc_opts(&mut db, &rules, preds, &self.opts);
                    // Re-evaluation rebuilt the extents from scratch on
                    // fresh rows whose counts are zero; under FBF the
                    // changed rule set also changes what counts as a
                    // non-recursive derivation, so recount this clique
                    // before the delta propagates downstream.
                    if self.opts.maintenance == MaintenanceStrategy::Fbf {
                        init_counts_scc(&mut db, &rules, preds, &self.opts);
                    }
                    out
                }
                NodeKind::Base(_) => {
                    // The last rule for this predicate was removed: it is
                    // now a base table holding derived leftovers; remove
                    // them (tombstoned for any pinned snapshot).
                    let mut d = Delta::default();
                    for t in db.rel(head).sorted() {
                        d.removed.insert(t);
                    }
                    for t in &d.removed {
                        db.rel_mut(head).remove(t);
                    }
                    HashMap::from([(head, d)])
                }
            }
        };
        // The head re-evaluation above already mutated the database; seed
        // the undo log with it so a stalled propagation rolls the data
        // back to the pre-change materialization (the new rule set stays —
        // re-drive with a working scheduler to converge).
        let undo: Vec<(PredId, Delta)> = out
            .iter()
            .filter(|(_, d)| !d.is_empty())
            .map(|(p, d)| (*p, d.clone()))
            .collect();
        let mut scheduler = make_sched(self.graph.dag.clone());
        let report = self.drive(
            scheduler.as_mut(),
            &[node],
            HashMap::new(),
            HashMap::from([(node, out)]),
            undo,
            None,
            None,
        )?;
        self.publish();
        Ok(report)
    }

    /// Pattern query against the materialization, e.g. `path(a, ?)`.
    /// Returns rendered tuples, sorted.
    pub fn query(&self, pattern: &str) -> Result<Vec<String>, EngineError> {
        let (pred, pats) = parse_pattern(pattern).map_err(EngineError::Edit)?;
        let db = self.db_read();
        let rows = run_query(&db, &pred, &pats);
        Ok(crate::query::render(&db, &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incr_sched::{Hybrid, LevelBased, LogicBlox, SignalPropagation};

    const TC: &str = "path(X, Y) :- edge(X, Y).\n\
                      path(X, Z) :- path(X, Y), edge(Y, Z).\n\
                      edge(a, b). edge(b, c).";

    #[test]
    fn initial_materialization() {
        let e = IncrementalEngine::new(TC).unwrap();
        assert!(e.has("path", &["a", "c"]));
        assert_eq!(e.count("path"), 3);
    }

    #[test]
    fn incremental_insert_with_every_scheduler() {
        for mk in [0, 1, 2, 3] {
            let mut e = IncrementalEngine::new(TC).unwrap();
            let dag = e.dag().clone();
            let mut s: Box<dyn Scheduler> = match mk {
                0 => Box::new(LevelBased::new(dag)),
                1 => Box::new(LogicBlox::new(dag)),
                2 => Box::new(Hybrid::new(dag)),
                _ => Box::new(SignalPropagation::new(dag)),
            };
            let rep = e
                .update(s.as_mut(), &[FactEdit::add("edge", &["c", "d"])])
                .unwrap();
            assert!(e.has("path", &["a", "d"]), "scheduler {mk}");
            assert_eq!(e.count("path"), 6);
            assert_eq!(rep.tasks_executed, 2, "base + clique");
            assert_eq!(rep.edges_fired, 1);
        }
    }

    #[test]
    fn incremental_delete_matches_recompute() {
        let mut e = IncrementalEngine::new(TC).unwrap();
        let dag = e.dag().clone();
        let mut s = LevelBased::new(dag);
        e.update(&mut s, &[FactEdit::remove("edge", &["a", "b"])])
            .unwrap();
        assert!(!e.has("path", &["a", "b"]));
        assert!(!e.has("path", &["a", "c"]));
        assert!(e.has("path", &["b", "c"]));
        assert_eq!(e.count("path"), 1);
    }

    #[test]
    fn no_output_change_stops_cascade() {
        // Adding edge(a, b) when path(a, b) already derivable via another
        // edge: the edge base node runs, the path clique runs, but since
        // nothing downstream exists the report shows the firing stopped.
        let src = "p2(X, Y) :- path(X, Y).\n\
                   path(X, Y) :- edge(X, Y).\n\
                   path(X, Z) :- path(X, Y), edge(Y, Z).\n\
                   edge(a, b). edge(b, c). edge(a, c).";
        let mut e = IncrementalEngine::new(src).unwrap();
        let dag = e.dag().clone();
        let mut s = LevelBased::new(dag);
        // Removing edge(a, c) leaves path unchanged (a->c via b): the
        // path task runs but must NOT fire p2.
        let rep = e
            .update(&mut s, &[FactEdit::remove("edge", &["a", "c"])])
            .unwrap();
        assert!(e.has("path", &["a", "c"]), "still derivable via b");
        assert_eq!(
            rep.tasks_executed, 2,
            "edge base + path clique; p2 must not activate"
        );
        assert_eq!(e.count("p2"), e.count("path"));
    }

    #[test]
    fn noop_edit_activates_nothing() {
        let mut e = IncrementalEngine::new(TC).unwrap();
        let dag = e.dag().clone();
        let mut s = LevelBased::new(dag);
        // Adding an existing fact is a no-op: no initial tasks at all.
        let rep = e
            .update(&mut s, &[FactEdit::add("edge", &["a", "b"])])
            .unwrap();
        assert_eq!(rep.tasks_executed, 0);
    }

    #[test]
    fn add_and_remove_cancel() {
        let mut e = IncrementalEngine::new(TC).unwrap();
        let dag = e.dag().clone();
        let mut s = LevelBased::new(dag);
        let rep = e
            .update(
                &mut s,
                &[
                    FactEdit::add("edge", &["x", "y"]),
                    FactEdit::remove("edge", &["x", "y"]),
                ],
            )
            .unwrap();
        assert_eq!(rep.tasks_executed, 0, "cancelling edits net to nothing");
        assert!(!e.has("path", &["x", "y"]));
    }

    #[test]
    fn stratified_negation_updates() {
        let src = "reach(X) :- start(X).\n\
                   reach(Y) :- reach(X), edge(X, Y).\n\
                   node(X) :- edge(X, Y).\n\
                   node(Y) :- edge(X, Y).\n\
                   cut(X) :- node(X), !reach(X).\n\
                   start(a). edge(a, b). edge(c, d).";
        let mut e = IncrementalEngine::new(src).unwrap();
        assert!(e.has("cut", &["c"]));
        assert!(e.has("cut", &["d"]));
        assert!(!e.has("cut", &["a"]));
        // Connect b -> c: c and d become reachable, leave `cut`.
        let dag = e.dag().clone();
        let mut s = Hybrid::new(dag);
        e.update(&mut s, &[FactEdit::add("edge", &["b", "c"])])
            .unwrap();
        assert!(!e.has("cut", &["c"]));
        assert!(!e.has("cut", &["d"]));
        assert!(e.has("reach", &["d"]));
    }

    #[test]
    fn editing_derived_pred_rejected() {
        let mut e = IncrementalEngine::new(TC).unwrap();
        let dag = e.dag().clone();
        let mut s = LevelBased::new(dag);
        let err = e.update(&mut s, &[FactEdit::add("path", &["x", "y"])]);
        assert!(matches!(err, Err(EngineError::Edit(_))));
    }

    #[test]
    fn unknown_pred_rejected() {
        let mut e = IncrementalEngine::new(TC).unwrap();
        let dag = e.dag().clone();
        let mut s = LevelBased::new(dag);
        assert!(e
            .update(&mut s, &[FactEdit::add("ghost", &["x"])])
            .is_err());
    }

    fn lb(dag: Arc<Dag>) -> Box<dyn Scheduler> {
        Box::new(LevelBased::new(dag))
    }

    #[test]
    fn add_rule_extends_materialization() {
        let mut e = IncrementalEngine::new(TC).unwrap();
        assert_eq!(e.count("path"), 3);
        // Symmetric closure: add the reverse-edge rule.
        let rep = e.add_rule("path(Y, X) :- edge(X, Y).", lb).unwrap();
        assert!(rep.tasks_executed >= 1);
        assert!(e.has("path", &["b", "a"]));
        assert!(e.has("path", &["c", "b"]));
        assert!(
            e.has("path", &["b", "b"]),
            "recursion composes reversed paths with forward edges"
        );
        // {{ab, bc, ac}} + {{ba, cb}} + {{bb, cc}} — path(c, a) is NOT
        // derivable: reversal only seeds `path`; recursion follows `edge`.
        assert_eq!(e.count("path"), 7);
        assert!(!e.has("path", &["c", "a"]));
    }

    #[test]
    fn add_rule_propagates_downstream() {
        let src = format!("{TC}\nendpoints(X) :- path(a, X).");
        let mut e = IncrementalEngine::new(&src).unwrap();
        assert_eq!(e.count("endpoints"), 2); // b, c
        e.add_rule("path(X, X) :- edge(X, Y).", lb).unwrap();
        assert!(e.has("endpoints", &["a"]), "new path(a, a) reached endpoints");
    }

    #[test]
    fn remove_rule_shrinks_materialization() {
        let mut e = IncrementalEngine::new(TC).unwrap();
        let rep = e
            .remove_rule("path(X, Z) :- path(X, Y), edge(Y, Z).", lb)
            .unwrap();
        assert!(rep.tasks_executed >= 1);
        assert_eq!(e.count("path"), 2, "closure collapses to the base edges");
        assert!(!e.has("path", &["a", "c"]));
    }

    #[test]
    fn remove_last_rule_clears_predicate() {
        let src = "p(X) :- q(X).\nq(a). q(b).";
        let mut e = IncrementalEngine::new(src).unwrap();
        assert_eq!(e.count("p"), 2);
        e.remove_rule("p(X) :- q(X).", lb).unwrap();
        assert_eq!(e.count("p"), 0);
    }

    #[test]
    fn add_rule_rejects_facts_and_unknown_removals() {
        let mut e = IncrementalEngine::new(TC).unwrap();
        assert!(matches!(
            e.add_rule("edge(z, w).", lb),
            Err(EngineError::Edit(_))
        ));
        assert!(matches!(
            e.remove_rule("path(X, Y) :- ghost(X, Y).", lb),
            Err(EngineError::Edit(_))
        ));
    }

    #[test]
    fn add_rule_rolls_back_on_stratification_failure() {
        let src = "p(X) :- base(X), !q(X).\nq(X) :- base2(X).\nbase(a). base2(b).";
        let mut e = IncrementalEngine::new(src).unwrap();
        // q :- p would put negation inside a cycle.
        let err = e.add_rule("q(X) :- p(X).", lb);
        assert!(matches!(err, Err(EngineError::Stratify(_))));
        // Engine still works after the rollback.
        assert!(e.has("p", &["a"]));
        let dag = e.dag().clone();
        let mut s = LevelBased::new(dag);
        e.update(&mut s, &[FactEdit::add("base", &["c"])]).unwrap();
        assert!(e.has("p", &["c"]));
    }

    #[test]
    fn rule_change_equals_recompute() {
        let base = "t(X, Y) :- e(X, Y).\ne(a, b). e(b, c). e(c, d).";
        let mut incr = IncrementalEngine::new(base).unwrap();
        incr.add_rule("t(X, Z) :- t(X, Y), e(Y, Z).", lb).unwrap();
        let full = IncrementalEngine::new(
            "t(X, Y) :- e(X, Y).\nt(X, Z) :- t(X, Y), e(Y, Z).\ne(a, b). e(b, c). e(c, d).",
        )
        .unwrap();
        assert_eq!(incr.count("t"), full.count("t"));
        // And removing it again restores the original state.
        incr.remove_rule("t(X, Z) :- t(X, Y), e(Y, Z).", lb).unwrap();
        assert_eq!(incr.count("t"), 3);
    }

    #[test]
    fn query_patterns() {
        let e = IncrementalEngine::new(TC).unwrap();
        let all = e.query("path(?, ?)").unwrap();
        assert_eq!(all.len(), 3);
        let from_a = e.query("path(a, X)").unwrap();
        assert_eq!(from_a, vec!["(a, b)", "(a, c)"]);
        assert!(e.query("path(zzz, ?)").unwrap().is_empty());
        assert!(e.query("garbage").is_err());
    }

    #[test]
    fn aggregates_materialize_and_update() {
        let src = "
            revenue(C, sum(P)) :- sale(T, I), product(I, C), price(I, P).
            volume(C, count(T)) :- sale(T, I), product(I, C).
            priciest(C, max(P)) :- product(I, C), price(I, P).
            product(widget, gadgets). product(sprocket, gadgets). product(tea, grocery).
            price(widget, 10). price(sprocket, 25). price(tea, 4).
            sale(s1, widget). sale(s2, widget). sale(s3, tea).
        ";
        let mut e = IncrementalEngine::new(src).unwrap();
        // Two widget sales (price 10 counted once per distinct (group, P)
        // binding? No: raw bindings are distinct over (T, I, P) projected
        // to head vars — the tuple space here is (C, P) with T in count
        // only). revenue sums DISTINCT (C, P) pairs reached: gadgets ->
        // {10} (widget sales) = 10.
        assert_eq!(e.query("revenue(grocery, ?)").unwrap(), vec!["(grocery, 4)"]);
        assert_eq!(e.query("revenue(gadgets, ?)").unwrap(), vec!["(gadgets, 10)"]);
        assert_eq!(e.query("volume(gadgets, ?)").unwrap(), vec!["(gadgets, 2)"]);
        assert_eq!(e.query("priciest(gadgets, ?)").unwrap(), vec!["(gadgets, 25)"]);

        // Incremental: a sprocket sells; gadgets revenue gains the 25
        // price point, volume rises to 3.
        let dag = e.dag().clone();
        let mut s = LevelBased::new(dag);
        let rep = e
            .update(&mut s, &[FactEdit::add("sale", &["s4", "sprocket"])])
            .unwrap();
        assert!(rep.tasks_executed >= 2);
        assert_eq!(e.query("revenue(gadgets, ?)").unwrap(), vec!["(gadgets, 35)"]);
        assert_eq!(e.query("volume(gadgets, ?)").unwrap(), vec!["(gadgets, 3)"]);

        // Deletion: all widget sales void; gadgets revenue drops to 25.
        let dag = e.dag().clone();
        let mut s = Hybrid::new(dag);
        e.update(
            &mut s,
            &[
                FactEdit::remove("sale", &["s1", "widget"]),
                FactEdit::remove("sale", &["s2", "widget"]),
            ],
        )
        .unwrap();
        assert_eq!(e.query("revenue(gadgets, ?)").unwrap(), vec!["(gadgets, 25)"]);
        // Only the sprocket sale (s4) remains in gadgets.
        assert_eq!(e.query("volume(gadgets, ?)").unwrap(), vec!["(gadgets, 1)"]);
    }

    #[test]
    fn aggregate_group_appears_and_disappears() {
        let src = "
            per_node(X, count(Y)) :- edge(X, Y).
            edge(a, b).
        ";
        let mut e = IncrementalEngine::new(src).unwrap();
        assert_eq!(e.query("per_node(a, ?)").unwrap(), vec!["(a, 1)"]);
        let dag = e.dag().clone();
        let mut s = LevelBased::new(dag);
        e.update(&mut s, &[FactEdit::remove("edge", &["a", "b"])])
            .unwrap();
        assert_eq!(e.count("per_node"), 0, "empty group emits no fact");
        let dag = e.dag().clone();
        let mut s = LevelBased::new(dag);
        e.update(
            &mut s,
            &[
                FactEdit::add("edge", &["a", "b"]),
                FactEdit::add("edge", &["a", "c"]),
            ],
        )
        .unwrap();
        assert_eq!(e.query("per_node(a, ?)").unwrap(), vec!["(a, 2)"]);
    }

    #[test]
    fn aggregate_downstream_propagation_stops_when_unchanged() {
        // Downstream of the aggregate only fires when the fold changes.
        let src = "
            total(X, sum(V)) :- m(X, V).
            alert(X) :- total(X, 10).
            m(a, 10).
        ";
        let mut e = IncrementalEngine::new(src).unwrap();
        assert!(e.has("alert", &["a"]));
        // Adding m(a, 0) keeps the sum at 10: alert must not re-derive
        // (output delta of `total` is empty -> no fire).
        let dag = e.dag().clone();
        let mut s = LevelBased::new(dag);
        let rep = e
            .update(&mut s, &[FactEdit::add("m", &["a", "0"])])
            .unwrap();
        assert!(e.has("alert", &["a"]));
        assert_eq!(
            rep.tasks_executed, 2,
            "base + total re-ran; alert must not activate"
        );
    }

    #[test]
    fn aggregate_over_recursive_closure() {
        // Aggregate a recursively-derived predicate: reach size per start.
        let src = "
            reach(S, S) :- start(S).
            reach(S, Y) :- reach(S, X), edge(X, Y).
            reach_size(S, count(Y)) :- reach(S, Y).
            start(a). edge(a, b). edge(b, c).
        ";
        let mut e = IncrementalEngine::new(src).unwrap();
        assert_eq!(e.query("reach_size(a, ?)").unwrap(), vec!["(a, 3)"]);
        let dag = e.dag().clone();
        let mut s = Hybrid::new(dag);
        e.update(&mut s, &[FactEdit::add("edge", &["c", "d"])])
            .unwrap();
        assert_eq!(e.query("reach_size(a, ?)").unwrap(), vec!["(a, 4)"]);
    }

    #[test]
    fn aggregation_through_recursion_rejected() {
        let src = "t(X, count(Y)) :- t(Y, X).";
        assert!(matches!(
            IncrementalEngine::new(src),
            Err(EngineError::Stratify(_))
        ));
    }

    #[test]
    fn aggregate_syntax_errors() {
        assert!(crate::parser::parse_program("p(X) :- q(count(X)).").is_err());
        assert!(crate::parser::parse_program("p(count(X), sum(Y)) :- q(X, Y).").is_err());
        assert!(crate::parser::parse_program("p(avg(X)) :- q(X).").is_err());
    }

    /// Pops the first `quota` tasks, then refuses to schedule — a broken
    /// scheduler that wedges an update partway through.
    struct QuotaStall {
        inner: LevelBased,
        quota: usize,
        popped: usize,
    }

    impl QuotaStall {
        fn new(dag: Arc<Dag>, quota: usize) -> Self {
            QuotaStall {
                inner: LevelBased::new(dag),
                quota,
                popped: 0,
            }
        }
    }

    impl Scheduler for QuotaStall {
        fn name(&self) -> &str {
            "QuotaStall"
        }
        fn start(&mut self, initial: &[NodeId]) {
            self.popped = 0;
            self.inner.start(initial);
        }
        fn on_completed(&mut self, v: NodeId, fired: &[NodeId]) {
            self.inner.on_completed(v, fired);
        }
        fn pop_ready(&mut self) -> Option<NodeId> {
            if self.popped >= self.quota {
                return None;
            }
            let t = self.inner.pop_ready();
            if t.is_some() {
                self.popped += 1;
            }
            t
        }
        fn is_quiescent(&self) -> bool {
            self.inner.is_quiescent()
        }
        fn cost(&self) -> CostMeter {
            self.inner.cost()
        }
        fn space_bytes(&self) -> usize {
            self.inner.space_bytes()
        }
        fn precompute_bytes(&self) -> usize {
            self.inner.precompute_bytes()
        }
        fn on_external_dispatch(&mut self, v: NodeId) {
            self.inner.on_external_dispatch(v);
        }
    }

    /// Capture the full contents of every relation, sorted — the
    /// bit-identical yardstick for rollback tests.
    fn db_image(e: &IncrementalEngine, preds: &[&str]) -> Vec<Vec<String>> {
        preds
            .iter()
            .map(|p| {
                let arity = {
                    let db = e.database();
                    db.rel(db.pred_id(p).unwrap()).arity()
                };
                let mut rows = e
                    .query(&format!("{p}({})", vec!["?"; arity].join(", ")))
                    .unwrap();
                rows.sort();
                rows
            })
            .collect()
    }

    #[test]
    fn stalled_update_rolls_back_and_retry_is_idempotent() {
        let mut e = IncrementalEngine::new(TC).unwrap();
        let before = db_image(&e, &["edge", "path"]);
        let dag = e.dag().clone();

        // Quota 1: the base-edit node runs (edge mutated, path pending)
        // and then the scheduler refuses to continue.
        let mut broken = QuotaStall::new(dag.clone(), 1);
        let err = e
            .update(&mut broken, &[FactEdit::add("edge", &["c", "d"])])
            .unwrap_err();
        assert!(
            matches!(err, EngineError::Stall { ref scheduler } if scheduler == "QuotaStall"),
            "got {err:?}"
        );
        assert!(err.to_string().contains("rolled back"));
        assert_eq!(
            db_image(&e, &["edge", "path"]),
            before,
            "failed update must leave no trace"
        );

        // Retrying the same edit with a working scheduler matches a fresh
        // engine that never saw the failure.
        let mut good = LevelBased::new(dag);
        e.update(&mut good, &[FactEdit::add("edge", &["c", "d"])])
            .unwrap();
        let mut fresh = IncrementalEngine::new(TC).unwrap();
        let dag2 = fresh.dag().clone();
        let mut s2 = LevelBased::new(dag2);
        fresh
            .update(&mut s2, &[FactEdit::add("edge", &["c", "d"])])
            .unwrap();
        assert_eq!(
            db_image(&e, &["edge", "path"]),
            db_image(&fresh, &["edge", "path"]),
            "recovered state must be bit-identical to the never-failed run"
        );
    }

    #[test]
    fn stall_mid_cascade_rolls_back_clique_outputs_too() {
        // Deletion exercises the DRed path: overdelete/rederive deltas in
        // `path` must be undone, not just the base edit.
        let src = "p2(X, Y) :- path(X, Y).\n\
                   path(X, Y) :- edge(X, Y).\n\
                   path(X, Z) :- path(X, Y), edge(Y, Z).\n\
                   edge(a, b). edge(b, c).";
        let mut e = IncrementalEngine::new(src).unwrap();
        let preds = ["edge", "path", "p2"];
        let before = db_image(&e, &preds);
        let dag = e.dag().clone();

        // Quota 2: base node + path clique execute (path shrinks), then
        // the scheduler wedges before p2 can be updated.
        let mut broken = QuotaStall::new(dag.clone(), 2);
        let err = e
            .update(&mut broken, &[FactEdit::remove("edge", &["a", "b"])])
            .unwrap_err();
        assert!(matches!(err, EngineError::Stall { .. }));
        assert_eq!(
            db_image(&e, &preds),
            before,
            "clique deltas must be rolled back alongside the base edit"
        );

        // Idempotent retry completes the deletion.
        let mut good = Hybrid::new(dag);
        e.update(&mut good, &[FactEdit::remove("edge", &["a", "b"])])
            .unwrap();
        assert!(!e.has("path", &["a", "c"]));
        assert!(!e.has("p2", &["a", "b"]));
        assert_eq!(e.count("path"), 1);
        assert_eq!(e.count("p2"), 1);
    }

    #[test]
    fn stalled_rule_change_rolls_back_data() {
        let mut e = IncrementalEngine::new(TC).unwrap();
        assert_eq!(e.count("path"), 3);
        // A scheduler that refuses all work: the head clique's preset
        // delta was applied before the drive, and must be undone.
        let err = e.add_rule("path(Y, X) :- edge(X, Y).", |dag| {
            Box::new(QuotaStall::new(dag, 0))
        });
        assert!(matches!(err, Err(EngineError::Stall { .. })));
        assert_eq!(
            e.count("path"),
            3,
            "preset delta rolled back on stalled propagation"
        );
    }

    #[test]
    fn integers_in_edits() {
        let src = "small(X) :- reading(X, V), threshold(V).\n\
                   threshold(1). reading(s1, 1).";
        let mut e = IncrementalEngine::new(src).unwrap();
        assert!(e.has("small", &["s1"]));
        let dag = e.dag().clone();
        let mut s = LevelBased::new(dag);
        e.update(&mut s, &[FactEdit::remove("reading", &["s1", "1"])])
            .unwrap();
        assert_eq!(e.count("small"), 0);
    }
}
