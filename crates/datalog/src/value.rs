//! The constant domain: integers and interned symbols.
//!
//! Symbols are interned per [`Interner`] so tuples are small `Copy` data
//! and joins compare in one instruction — the same trick production
//! Datalog engines (LogicBlox, Soufflé) use.

use std::collections::HashMap;
use std::fmt;

/// Interned symbol handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymId(pub u32);

/// A constant value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    Int(i64),
    Sym(SymId),
}

/// A fact's constant vector.
pub type Tuple = Vec<Value>;

/// String interner: symbol text ↔ [`SymId`].
#[derive(Clone, Debug, Default)]
pub struct Interner {
    map: HashMap<String, SymId>,
    names: Vec<String>,
}

impl Interner {
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern `s`, returning its stable id.
    pub fn intern(&mut self, s: &str) -> SymId {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = SymId(u32::try_from(self.names.len()).expect("too many symbols"));
        self.map.insert(s.to_string(), id);
        self.names.push(s.to_string());
        id
    }

    /// Look up without interning.
    pub fn get(&self, s: &str) -> Option<SymId> {
        self.map.get(s).copied()
    }

    /// The text of `id`.
    pub fn name(&self, id: SymId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Render a value for display.
    pub fn display(&self, v: Value) -> String {
        match v {
            Value::Int(i) => i.to_string(),
            Value::Sym(s) => self.name(s).to_string(),
        }
    }

    /// Render a tuple for display.
    pub fn display_tuple(&self, t: &[Value]) -> String {
        let cells: Vec<String> = t.iter().map(|&v| self.display(v)).collect();
        format!("({})", cells.join(", "))
    }
}

impl fmt::Display for SymId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("alice");
        let b = i.intern("bob");
        assert_ne!(a, b);
        assert_eq!(i.intern("alice"), a);
        assert_eq!(i.name(a), "alice");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        let x = i.intern("x");
        assert_eq!(i.get("x"), Some(x));
    }

    #[test]
    fn values_order_and_compare() {
        let mut i = Interner::new();
        let s = i.intern("s");
        assert!(Value::Int(1) < Value::Int(2));
        assert_eq!(Value::Sym(s), Value::Sym(s));
        assert_ne!(Value::Int(0), Value::Sym(s));
    }

    #[test]
    fn display_forms() {
        let mut i = Interner::new();
        let s = i.intern("bob");
        assert_eq!(i.display(Value::Int(7)), "7");
        assert_eq!(i.display(Value::Sym(s)), "bob");
        assert_eq!(
            i.display_tuple(&[Value::Int(1), Value::Sym(s)]),
            "(1, bob)"
        );
    }
}
