//! Property tests: parallel evaluation (`threads = 4`, pool forced) must
//! produce exactly the same materializations and the same per-update net
//! deltas as sequential evaluation (`threads = 1`), on random programs,
//! random base facts, and random edit sequences. A second family checks
//! snapshot isolation: a snapshot pinned mid-cascade reads the
//! pre-update database bit-for-bit, and a post-publish snapshot matches
//! the sequential reference — under every scheduler.
//!
//! The engines are built from identical source text, so symbol interning
//! — and therefore raw tuple comparison — agrees between the two runs.

use crate::engine::{FactEdit, IncrementalEngine};
use crate::fbf::MaintenanceStrategy;
use crate::mvcc::{ReaderHandle, Snapshot};
use crate::par::EvalOptions;
use crate::shard::ShardedEngine;
use crate::value::Tuple;
use incr_dag::Dag;
use incr_sched::{CostMeter, Hybrid, LevelBased, LogicBlox, Scheduler, SignalPropagation};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const TC_RULES: &str = "path(X, Y) :- edge(X, Y).\n\
                        path(X, Z) :- path(X, Y), edge(Y, Z).\n";

const NEG_RULES: &str = "node(X) :- edge(X, Y).\n\
                         node(Y) :- edge(X, Y).\n\
                         reach(X) :- start(X).\n\
                         reach(Y) :- reach(X), edge(X, Y).\n\
                         unreach(X) :- node(X), !reach(X).\n\
                         start(n0).\n";

const TRI_RULES: &str = "tri(X, Z) :- edge(X, Y), edge(Y, Z), edge(X, Z).\n\
                         path(X, Y) :- edge(X, Y).\n\
                         path(X, Z) :- path(X, Y), edge(Y, Z).\n";

/// Right-recursive closure: the recursive atom is *not* anchored on the
/// head's first variable, so under sharding the derived `path` relation
/// itself goes through the cross-shard delta exchange (multiple rounds
/// per batch, DRed deletions included).
const RTC_RULES: &str = "path(X, Y) :- edge(X, Y).\n\
                         path(X, Z) :- edge(X, Y), path(Y, Z).\n";

/// Aggregates under sharding: `deg` is anchored (shard-local fold over
/// the owned partition), `indeg` groups by the *second* edge column and
/// is therefore replicated (every shard folds the full mirror).
const AGG_RULES: &str = "deg(X, count(Y)) :- edge(X, Y).\n\
                         indeg(Y, count(X)) :- edge(X, Y).\n";

fn program_src(rules: &str, edges: &[(usize, usize)]) -> String {
    let mut src = String::from(rules);
    for &(a, b) in edges {
        src.push_str(&format!("edge(n{a}, n{b}).\n"));
    }
    src
}

fn forced_parallel() -> EvalOptions {
    let mut o = EvalOptions::with_threads(4);
    // Fan every delta out, however tiny — maximal interleaving coverage.
    o.min_parallel_tuples = 0;
    o
}

type Extents = Vec<(String, Vec<Tuple>)>;
type Steps = Vec<(HashMap<String, (usize, usize)>, Extents)>;

fn extents(e: &IncrementalEngine, preds: &[&str]) -> Extents {
    let db = e.database();
    preds
        .iter()
        .map(|p| {
            let rows = db.pred_id(p).map(|id| db.rel(id).sorted()).unwrap_or_default();
            (p.to_string(), rows)
        })
        .collect()
}

/// Run one program + edit sequence under both option sets and assert the
/// materializations and per-step net deltas coincide.
fn assert_equivalent(
    rules: &str,
    preds: &[&str],
    edges: &[(usize, usize)],
    edits: &[(bool, usize, usize)],
) -> Result<(), TestCaseError> {
    let src = program_src(rules, edges);
    let run = |opts: EvalOptions| -> (Extents, Steps) {
        let mut e = IncrementalEngine::with_options(&src, opts).expect("valid program");
        let initial = extents(&e, preds);
        let mut steps = Vec::new();
        for batch in edits.chunks(4) {
            let fe: Vec<FactEdit> = batch
                .iter()
                .map(|&(add, a, b)| {
                    let args = [format!("n{a}"), format!("n{b}")];
                    let args: Vec<&str> = args.iter().map(String::as_str).collect();
                    if add {
                        FactEdit::add("edge", &args)
                    } else {
                        FactEdit::remove("edge", &args)
                    }
                })
                .collect();
            let mut s: Box<dyn Scheduler> = Box::new(LevelBased::new(e.dag().clone()));
            let rep = e.update(s.as_mut(), &fe).expect("valid edit");
            steps.push((rep.pred_changes, extents(&e, preds)));
        }
        (initial, steps)
    };
    let (seq_init, seq_steps) = run(EvalOptions::sequential());
    let (par_init, par_steps) = run(forced_parallel());
    prop_assert_eq!(seq_init, par_init, "initial materialization differs");
    prop_assert_eq!(seq_steps.len(), par_steps.len());
    for (i, (s, p)) in seq_steps.iter().zip(&par_steps).enumerate() {
        prop_assert_eq!(&s.0, &p.0, "net deltas differ at step {}", i);
        prop_assert_eq!(&s.1, &p.1, "extents differ at step {}", i);
    }
    Ok(())
}

/// Wraps any scheduler and pins a snapshot at the first popped task —
/// i.e. after the cascade has started mutating the head version but
/// before anything publishes.
struct PinAtFirstPop {
    inner: Box<dyn Scheduler>,
    reader: ReaderHandle,
    snap: Option<Snapshot>,
}

impl Scheduler for PinAtFirstPop {
    fn name(&self) -> &str {
        "PinAtFirstPop"
    }
    fn start(&mut self, initial: &[incr_dag::NodeId]) {
        self.inner.start(initial);
    }
    fn on_completed(&mut self, v: incr_dag::NodeId, fired: &[incr_dag::NodeId]) {
        self.inner.on_completed(v, fired);
    }
    fn pop_ready(&mut self) -> Option<incr_dag::NodeId> {
        let t = self.inner.pop_ready();
        if t.is_some() && self.snap.is_none() {
            self.snap = Some(self.reader.snapshot());
        }
        t
    }
    fn is_quiescent(&self) -> bool {
        self.inner.is_quiescent()
    }
    fn cost(&self) -> CostMeter {
        self.inner.cost()
    }
    fn space_bytes(&self) -> usize {
        self.inner.space_bytes()
    }
    fn precompute_bytes(&self) -> usize {
        self.inner.precompute_bytes()
    }
    fn on_external_dispatch(&mut self, v: incr_dag::NodeId) {
        self.inner.on_external_dispatch(v);
    }
}

fn make_scheduler(e: &IncrementalEngine, kind: usize) -> Box<dyn Scheduler> {
    let dag = e.dag().clone();
    match kind {
        0 => Box::new(LevelBased::new(dag)),
        1 => Box::new(LogicBlox::new(dag)),
        2 => Box::new(Hybrid::new(dag)),
        _ => Box::new(SignalPropagation::new(dag)),
    }
}

fn edit_batches(edits: &[(bool, usize, usize)]) -> Vec<Vec<FactEdit>> {
    edits
        .chunks(4)
        .map(|batch| {
            batch
                .iter()
                .map(|&(add, a, b)| {
                    let args = [format!("n{a}"), format!("n{b}")];
                    let args: Vec<&str> = args.iter().map(String::as_str).collect();
                    if add {
                        FactEdit::add("edge", &args)
                    } else {
                        FactEdit::remove("edge", &args)
                    }
                })
                .collect()
        })
        .collect()
}

/// Snapshot isolation under every scheduler: for each edit batch,
/// 1. a snapshot pinned mid-cascade is bit-identical to the pre-update
///    database,
/// 2. a snapshot pinned after the publish is bit-identical to the head
///    and to a sequential (LevelBased) reference run over the same
///    edits.
fn assert_snapshot_isolation(
    rules: &str,
    edges: &[(usize, usize)],
    edits: &[(bool, usize, usize)],
) -> Result<(), TestCaseError> {
    let src = program_src(rules, edges);
    let batches = edit_batches(edits);

    // Sequential reference: one image per committed batch.
    let mut reference = IncrementalEngine::new(&src).expect("valid program");
    let ref_images: Vec<Vec<String>> = batches
        .iter()
        .map(|fe| {
            let mut s = LevelBased::new(reference.dag().clone());
            reference.update(&mut s, fe).expect("valid edit");
            reference.database().image_at(None)
        })
        .collect();

    for kind in 0..4 {
        let mut e = IncrementalEngine::new(&src).expect("valid program");
        for (step, fe) in batches.iter().enumerate() {
            let pre = e.database().image_at(None);
            let pre_epoch = e.epoch();
            let mut s = PinAtFirstPop {
                inner: make_scheduler(&e, kind),
                reader: e.reader(),
                snap: None,
            };
            e.update(&mut s, fe).expect("valid edit");
            if let Some(mid) = s.snap.take() {
                prop_assert_eq!(mid.epoch(), pre_epoch, "mid-cascade pin epoch");
                prop_assert_eq!(
                    mid.image(),
                    pre.clone(),
                    "mid-cascade snapshot != pre-update db (scheduler {}, step {})",
                    kind,
                    step
                );
            }
            let post = e.begin_snapshot();
            prop_assert_eq!(
                post.image(),
                e.database().image_at(None),
                "post-publish snapshot != head (scheduler {}, step {})",
                kind,
                step
            );
            prop_assert_eq!(
                post.image(),
                ref_images[step].clone(),
                "post-publish snapshot != sequential reference (scheduler {}, step {})",
                kind,
                step
            );
        }
    }
    Ok(())
}

fn make_sharded_scheduler(kind: usize) -> impl FnMut(Arc<Dag>) -> Box<dyn Scheduler + Send> {
    move |dag: Arc<Dag>| -> Box<dyn Scheduler + Send> {
        match kind {
            0 => Box::new(LevelBased::new(dag)),
            1 => Box::new(LogicBlox::new(dag)),
            2 => Box::new(Hybrid::new(dag)),
            _ => Box::new(SignalPropagation::new(dag)),
        }
    }
}

fn pattern_for(pred: &str, arity: usize) -> String {
    format!("{pred}({})", vec!["?"; arity].join(", "))
}

/// Rendered, sorted extents — interner-independent, so they compare
/// across engines built from different source orderings.
fn unsharded_image(e: &IncrementalEngine, preds: &[(&str, usize)]) -> Vec<(String, Vec<String>)> {
    preds
        .iter()
        .map(|&(p, a)| {
            let mut rows = e.query(&pattern_for(p, a)).expect("valid pattern");
            rows.sort();
            (p.to_string(), rows)
        })
        .collect()
}

fn sharded_image(e: &ShardedEngine, preds: &[(&str, usize)]) -> Vec<(String, Vec<String>)> {
    preds
        .iter()
        .map(|&(p, a)| (p.to_string(), e.query(&pattern_for(p, a)).expect("valid pattern")))
        .collect()
}

/// Sharded ≡ unsharded: run the same program + edit stream through an
/// unsharded reference engine and through [`ShardedEngine`] at 2 and 3
/// shards under every scheduler, comparing the rendered extents of every
/// predicate after every committed batch (and the ownership-filtered
/// `count()` against the reference image).
fn assert_sharded_equivalent(
    rules: &str,
    preds: &[(&str, usize)],
    edges: &[(usize, usize)],
    edits: &[(bool, usize, usize)],
) -> Result<(), TestCaseError> {
    let src = program_src(rules, edges);
    let batches = edit_batches(edits);

    // Unsharded reference: one image per committed batch (plus initial).
    let mut reference = IncrementalEngine::new(&src).expect("valid program");
    let mut ref_images = vec![unsharded_image(&reference, preds)];
    for fe in &batches {
        let mut s = LevelBased::new(reference.dag().clone());
        reference.update(&mut s, fe).expect("valid edit");
        ref_images.push(unsharded_image(&reference, preds));
    }

    for kind in 0..4 {
        for shards in [2usize, 3] {
            let mut e = ShardedEngine::new(&src, shards, make_sharded_scheduler(kind))
                .expect("valid program");
            prop_assert_eq!(
                &sharded_image(&e, preds),
                &ref_images[0],
                "initial materialization differs ({} shards, scheduler {})",
                shards,
                kind
            );
            for (step, fe) in batches.iter().enumerate() {
                e.update(fe).expect("valid edit");
                let img = sharded_image(&e, preds);
                prop_assert_eq!(
                    &img,
                    &ref_images[step + 1],
                    "extents differ at step {} ({} shards, scheduler {})",
                    step,
                    shards,
                    kind
                );
                for (p, rows) in &img {
                    prop_assert_eq!(
                        e.count(p),
                        rows.len(),
                        "count() disagrees with query() for {} at step {}",
                        p,
                        step
                    );
                }
            }
        }
    }
    Ok(())
}

fn fbf_opts() -> EvalOptions {
    EvalOptions::sequential().with_maintenance(MaintenanceStrategy::Fbf)
}

/// DRed ≡ FBF: the same program and edit stream through engines that
/// differ only in maintenance strategy must produce identical rendered
/// extents after every committed batch — under every scheduler, and
/// through the 2-shard exchange (count deltas ride the same batches).
fn assert_strategy_equivalent(
    rules: &str,
    preds: &[(&str, usize)],
    edges: &[(usize, usize)],
    edits: &[(bool, usize, usize)],
) -> Result<(), TestCaseError> {
    let src = program_src(rules, edges);
    let batches = edit_batches(edits);

    // DRed reference: one image per committed batch (plus initial).
    let mut reference = IncrementalEngine::new(&src).expect("valid program");
    let mut ref_images = vec![unsharded_image(&reference, preds)];
    for fe in &batches {
        let mut s = LevelBased::new(reference.dag().clone());
        reference.update(&mut s, fe).expect("valid edit");
        ref_images.push(unsharded_image(&reference, preds));
    }

    for kind in 0..4 {
        let mut e = IncrementalEngine::with_options(&src, fbf_opts()).expect("valid program");
        prop_assert_eq!(
            &unsharded_image(&e, preds),
            &ref_images[0],
            "FBF initial materialization differs (scheduler {})",
            kind
        );
        for (step, fe) in batches.iter().enumerate() {
            let mut s = make_scheduler(&e, kind);
            e.update(s.as_mut(), fe).expect("valid edit");
            prop_assert_eq!(
                &unsharded_image(&e, preds),
                &ref_images[step + 1],
                "FBF diverged from DRed at step {} (scheduler {})",
                step,
                kind
            );
        }
    }

    // Sharded FBF: count deltas cross the exchange and per-shard counts
    // must stay consistent batch after batch.
    let mut e = ShardedEngine::with_options(&src, 2, fbf_opts(), make_sharded_scheduler(0))
        .expect("valid program");
    prop_assert_eq!(
        &sharded_image(&e, preds),
        &ref_images[0],
        "sharded FBF initial materialization differs"
    );
    for (step, fe) in batches.iter().enumerate() {
        e.update(fe).expect("valid edit");
        prop_assert_eq!(
            &sharded_image(&e, preds),
            &ref_images[step + 1],
            "sharded FBF diverged from DRed at step {}",
            step
        );
    }
    Ok(())
}

/// Pops `quota` tasks per update, then refuses — wedges the cascade so
/// the engine must roll back (and, under FBF, recount support).
struct QuotaStall {
    inner: LevelBased,
    quota: usize,
    popped: usize,
}

impl Scheduler for QuotaStall {
    fn name(&self) -> &str {
        "QuotaStall"
    }
    fn start(&mut self, initial: &[incr_dag::NodeId]) {
        self.popped = 0;
        self.inner.start(initial);
    }
    fn on_completed(&mut self, v: incr_dag::NodeId, fired: &[incr_dag::NodeId]) {
        self.inner.on_completed(v, fired);
    }
    fn pop_ready(&mut self) -> Option<incr_dag::NodeId> {
        if self.popped >= self.quota {
            return None;
        }
        let t = self.inner.pop_ready();
        if t.is_some() {
            self.popped += 1;
        }
        t
    }
    fn is_quiescent(&self) -> bool {
        self.inner.is_quiescent()
    }
    fn cost(&self) -> CostMeter {
        self.inner.cost()
    }
    fn space_bytes(&self) -> usize {
        self.inner.space_bytes()
    }
    fn precompute_bytes(&self) -> usize {
        self.inner.precompute_bytes()
    }
    fn on_external_dispatch(&mut self, v: incr_dag::NodeId) {
        self.inner.on_external_dispatch(v);
    }
}

/// Restart-after-fault idempotence of FBF count state: every batch is
/// first attempted under a scheduler that wedges after one task. A
/// stalled attempt must leave the image untouched (rollback recounts
/// support), and the retry plus all *subsequent* deletion-heavy batches
/// must keep matching a DRed reference — corrupt counts would make a
/// later deletion over- or under-delete and diverge.
fn assert_fault_recovery_idempotent(
    rules: &str,
    preds: &[(&str, usize)],
    edges: &[(usize, usize)],
    edits: &[(bool, usize, usize)],
) -> Result<(), TestCaseError> {
    let src = program_src(rules, edges);
    let batches = edit_batches(edits);

    let mut reference = IncrementalEngine::new(&src).expect("valid program");
    let mut e = IncrementalEngine::with_options(&src, fbf_opts()).expect("valid program");
    for (step, fe) in batches.iter().enumerate() {
        let pre = unsharded_image(&e, preds);
        let mut broken = QuotaStall {
            inner: LevelBased::new(e.dag().clone()),
            quota: 1,
            popped: 0,
        };
        match e.update(&mut broken, fe) {
            // Small cascades can finish within the quota — that's a
            // legitimate success, not a fault.
            Ok(_) => {}
            Err(_) => {
                prop_assert_eq!(
                    &unsharded_image(&e, preds),
                    &pre,
                    "stalled update left a trace at step {}",
                    step
                );
                let mut good = LevelBased::new(e.dag().clone());
                e.update(&mut good, fe).expect("retry after stall");
            }
        }
        let mut s = LevelBased::new(reference.dag().clone());
        reference.update(&mut s, fe).expect("valid edit");
        prop_assert_eq!(
            &unsharded_image(&e, preds),
            &unsharded_image(&reference, preds),
            "post-recovery FBF state diverged from DRed at step {}",
            step
        );
    }
    Ok(())
}

fn edges_strategy() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0usize..6, 0usize..6), 0..14)
}

fn edits_strategy() -> impl Strategy<Value = Vec<(bool, usize, usize)>> {
    proptest::collection::vec((any::<bool>(), 0usize..6, 0usize..6), 0..16)
}

/// ~75% deletions: stresses DRed through the cross-shard exchange.
fn deletion_heavy_strategy() -> impl Strategy<Value = Vec<(bool, usize, usize)>> {
    proptest::collection::vec((0u8..4, 0usize..6, 0usize..6), 0..16)
        .prop_map(|v| v.into_iter().map(|(k, a, b)| (k == 0, a, b)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_matches_sequential_on_transitive_closure(
        edges in edges_strategy(),
        edits in edits_strategy(),
    ) {
        assert_equivalent(TC_RULES, &["edge", "path"], &edges, &edits)?;
    }

    #[test]
    fn parallel_matches_sequential_with_negation(
        edges in edges_strategy(),
        edits in edits_strategy(),
    ) {
        assert_equivalent(
            NEG_RULES,
            &["edge", "node", "reach", "unreach"],
            &edges,
            &edits,
        )?;
    }

    #[test]
    fn parallel_matches_sequential_on_multi_bound_joins(
        edges in edges_strategy(),
        edits in edits_strategy(),
    ) {
        assert_equivalent(TRI_RULES, &["edge", "tri", "path"], &edges, &edits)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn snapshots_isolate_transitive_closure(
        edges in edges_strategy(),
        edits in edits_strategy(),
    ) {
        assert_snapshot_isolation(TC_RULES, &edges, &edits)?;
    }

    #[test]
    fn snapshots_isolate_negation(
        edges in edges_strategy(),
        edits in edits_strategy(),
    ) {
        assert_snapshot_isolation(NEG_RULES, &edges, &edits)?;
    }

    #[test]
    fn snapshots_isolate_multi_bound_joins(
        edges in edges_strategy(),
        edits in edits_strategy(),
    ) {
        assert_snapshot_isolation(TRI_RULES, &edges, &edits)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sharded_matches_unsharded_on_transitive_closure(
        edges in edges_strategy(),
        edits in edits_strategy(),
    ) {
        assert_sharded_equivalent(TC_RULES, &[("edge", 2), ("path", 2)], &edges, &edits)?;
    }

    #[test]
    fn sharded_matches_unsharded_on_right_recursion(
        edges in edges_strategy(),
        edits in edits_strategy(),
    ) {
        assert_sharded_equivalent(RTC_RULES, &[("edge", 2), ("path", 2)], &edges, &edits)?;
    }

    #[test]
    fn sharded_matches_unsharded_with_negation(
        edges in edges_strategy(),
        edits in edits_strategy(),
    ) {
        assert_sharded_equivalent(
            NEG_RULES,
            &[("edge", 2), ("node", 1), ("reach", 1), ("unreach", 1)],
            &edges,
            &edits,
        )?;
    }

    #[test]
    fn sharded_matches_unsharded_on_multi_bound_joins(
        edges in edges_strategy(),
        edits in edits_strategy(),
    ) {
        assert_sharded_equivalent(
            TRI_RULES,
            &[("edge", 2), ("tri", 2), ("path", 2)],
            &edges,
            &edits,
        )?;
    }

    #[test]
    fn sharded_matches_unsharded_on_aggregates(
        edges in edges_strategy(),
        edits in edits_strategy(),
    ) {
        assert_sharded_equivalent(
            AGG_RULES,
            &[("edge", 2), ("deg", 2), ("indeg", 2)],
            &edges,
            &edits,
        )?;
    }

    #[test]
    fn sharded_matches_unsharded_under_deletion_heavy_stream(
        edges in edges_strategy(),
        edits in deletion_heavy_strategy(),
    ) {
        assert_sharded_equivalent(RTC_RULES, &[("edge", 2), ("path", 2)], &edges, &edits)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fbf_matches_dred_on_transitive_closure(
        edges in edges_strategy(),
        edits in edits_strategy(),
    ) {
        assert_strategy_equivalent(TC_RULES, &[("edge", 2), ("path", 2)], &edges, &edits)?;
    }

    #[test]
    fn fbf_matches_dred_on_right_recursion(
        edges in edges_strategy(),
        edits in edits_strategy(),
    ) {
        assert_strategy_equivalent(RTC_RULES, &[("edge", 2), ("path", 2)], &edges, &edits)?;
    }

    #[test]
    fn fbf_matches_dred_with_negation(
        edges in edges_strategy(),
        edits in edits_strategy(),
    ) {
        assert_strategy_equivalent(
            NEG_RULES,
            &[("edge", 2), ("node", 1), ("reach", 1), ("unreach", 1)],
            &edges,
            &edits,
        )?;
    }

    #[test]
    fn fbf_matches_dred_on_aggregates(
        edges in edges_strategy(),
        edits in edits_strategy(),
    ) {
        assert_strategy_equivalent(
            AGG_RULES,
            &[("edge", 2), ("deg", 2), ("indeg", 2)],
            &edges,
            &edits,
        )?;
    }

    #[test]
    fn fbf_matches_dred_under_deletion_heavy_stream(
        edges in edges_strategy(),
        edits in deletion_heavy_strategy(),
    ) {
        assert_strategy_equivalent(
            TRI_RULES,
            &[("edge", 2), ("tri", 2), ("path", 2)],
            &edges,
            &edits,
        )?;
    }

    #[test]
    fn fbf_counts_recover_from_faults(
        edges in edges_strategy(),
        edits in deletion_heavy_strategy(),
    ) {
        assert_fault_recovery_idempotent(
            TC_RULES,
            &[("edge", 2), ("path", 2)],
            &edges,
            &edits,
        )?;
    }
}
