//! Query interface: match patterns against the materialized database.
//!
//! Queries in a Datalog system "are answered by checking them against the
//! stored dataset of all facts that can be derived" (paper §I) — i.e.
//! lookups against the incrementally-maintained materialization, which is
//! why keeping it consistent cheaply matters.

use crate::rel::Database;
use crate::value::{Tuple, Value};

/// One position of a query pattern: bound to a constant or free.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pat {
    /// Must equal this symbol (interned on the fly; unknown symbols match
    /// nothing).
    Sym(String),
    /// Must equal this integer.
    Int(i64),
    /// Matches anything.
    Any,
}

impl Pat {
    fn matches(&self, v: Value, db: &Database) -> bool {
        match self {
            Pat::Any => true,
            Pat::Int(i) => v == Value::Int(*i),
            Pat::Sym(s) => match db.interner.get(s) {
                Some(id) => v == Value::Sym(id),
                None => false,
            },
        }
    }
}

/// Parse a textual pattern like `path(a, ?)` or `size(?, 10)`.
/// `?` and identifiers starting uppercase/`_` are free positions.
pub fn parse_pattern(src: &str) -> Result<(String, Vec<Pat>), String> {
    let src = src.trim().trim_end_matches('.');
    let open = src.find('(').ok_or("missing '('")?;
    if !src.ends_with(')') {
        return Err("missing ')'".to_string());
    }
    let pred = src[..open].trim().to_string();
    if pred.is_empty() {
        return Err("missing predicate name".to_string());
    }
    let inner = &src[open + 1..src.len() - 1];
    let pats = inner
        .split(',')
        .map(|t| {
            let t = t.trim();
            if t.is_empty() {
                return Err("empty term".to_string());
            }
            if t == "?" || t.starts_with(|c: char| c.is_ascii_uppercase() || c == '_') {
                Ok(Pat::Any)
            } else if let Ok(i) = t.parse::<i64>() {
                Ok(Pat::Int(i))
            } else {
                Ok(Pat::Sym(t.trim_matches('"').to_string()))
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok((pred, pats))
}

/// All tuples of `pred` matching the pattern, sorted for determinism.
pub fn query(db: &Database, pred: &str, pattern: &[Pat]) -> Vec<Tuple> {
    query_filtered(db, pred, pattern, None)
}

/// [`query`] against the consistent cut at a pinned snapshot epoch —
/// the read path [`crate::mvcc::Snapshot`] serves while the head
/// version is mid-cascade.
pub fn query_at(db: &Database, pred: &str, pattern: &[Pat], epoch: u64) -> Vec<Tuple> {
    query_filtered(db, pred, pattern, Some(epoch))
}

fn query_filtered(db: &Database, pred: &str, pattern: &[Pat], at: Option<u64>) -> Vec<Tuple> {
    let Some(id) = db.pred_id(pred) else {
        return Vec::new();
    };
    let rel = db.rel(id);
    if rel.arity() != pattern.len() {
        return Vec::new();
    }
    let keep = |t: &&Tuple| t.iter().zip(pattern).all(|(&v, p)| p.matches(v, db));
    let mut out: Vec<Tuple> = match at {
        None => rel.iter().filter(keep).cloned().collect(),
        Some(e) => rel.iter_at(e).filter(keep).cloned().collect(),
    };
    out.sort();
    out
}

/// Render query results with the interner.
pub fn render(db: &Database, tuples: &[Tuple]) -> Vec<String> {
    tuples.iter().map(|t| db.interner.display_tuple(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.insert_fact("edge", &["a", "b"]);
        db.insert_fact("edge", &["a", "c"]);
        db.insert_fact("edge", &["b", "c"]);
        let size = db.pred("size", 2);
        let a = db.sym("a");
        db.rel_mut(size).insert(vec![a, Value::Int(10)]);
        db
    }

    #[test]
    fn wildcard_queries() {
        let db = db();
        assert_eq!(query(&db, "edge", &[Pat::Any, Pat::Any]).len(), 3);
        assert_eq!(
            query(&db, "edge", &[Pat::Sym("a".into()), Pat::Any]).len(),
            2
        );
        assert_eq!(
            query(&db, "edge", &[Pat::Any, Pat::Sym("c".into())]).len(),
            2
        );
    }

    #[test]
    fn int_patterns() {
        let db = db();
        assert_eq!(query(&db, "size", &[Pat::Any, Pat::Int(10)]).len(), 1);
        assert_eq!(query(&db, "size", &[Pat::Any, Pat::Int(11)]).len(), 0);
    }

    #[test]
    fn unknown_symbol_or_pred_matches_nothing() {
        let db = db();
        assert!(query(&db, "edge", &[Pat::Sym("zzz".into()), Pat::Any]).is_empty());
        assert!(query(&db, "ghost", &[Pat::Any]).is_empty());
    }

    #[test]
    fn arity_mismatch_is_empty() {
        let db = db();
        assert!(query(&db, "edge", &[Pat::Any]).is_empty());
    }

    #[test]
    fn pattern_parsing() {
        assert_eq!(
            parse_pattern("path(a, ?)").unwrap(),
            ("path".into(), vec![Pat::Sym("a".into()), Pat::Any])
        );
        assert_eq!(
            parse_pattern("size(X, 10).").unwrap(),
            ("size".into(), vec![Pat::Any, Pat::Int(10)])
        );
        assert!(parse_pattern("nope").is_err());
        assert!(parse_pattern("p(").is_err());
        assert!(parse_pattern("(a)").is_err());
    }

    #[test]
    fn render_uses_symbol_names() {
        let db = db();
        let rows = query(&db, "edge", &[Pat::Sym("a".into()), Pat::Any]);
        let shown = render(&db, &rows);
        assert!(shown.contains(&"(a, b)".to_string()));
        assert!(shown.contains(&"(a, c)".to_string()));
    }
}
