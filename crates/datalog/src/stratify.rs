//! Predicate dependency analysis: Tarjan SCCs and stratified-negation
//! checking.
//!
//! The predicate dependency graph has an edge `q → p` for every rule
//! `p :- …, [!]q, …`. Strongly connected components are the recursive
//! cliques (each becomes one fixpoint task in the scheduling DAG); a
//! negative edge inside an SCC means negation through recursion, which is
//! rejected (the program is not stratifiable).

use crate::ast::Program;
use std::collections::HashMap;

/// Result of dependency analysis over a program.
#[derive(Clone, Debug)]
pub struct Stratification {
    /// Predicate names in a stable order (index = predicate number here).
    pub preds: Vec<String>,
    /// SCC id per predicate (indexes [`Stratification::sccs`]).
    pub scc_of: Vec<usize>,
    /// Predicates per SCC, in reverse-topological discovery order of
    /// Tarjan; use [`Stratification::topo`] for evaluation order.
    pub sccs: Vec<Vec<usize>>,
    /// SCC ids in dependency order (dependencies before dependents).
    pub topo: Vec<usize>,
    /// `true` for SCCs containing more than one predicate or a self-loop
    /// (i.e. genuinely recursive cliques needing fixpoint iteration).
    pub recursive: Vec<bool>,
    /// Stratum number per SCC: positive edges keep the stratum, negative
    /// edges increase it.
    pub stratum: Vec<u32>,
}

/// Errors from stratification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StratifyError {
    /// Negation through recursion: `pred` depends negatively on something
    /// in its own SCC.
    NegativeCycle { pred: String },
}

impl std::fmt::Display for StratifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StratifyError::NegativeCycle { pred } => {
                write!(f, "program is not stratifiable: {pred} negated through recursion")
            }
        }
    }
}

impl std::error::Error for StratifyError {}

/// Analyse `program`.
pub fn stratify(program: &Program) -> Result<Stratification, StratifyError> {
    // Collect predicates in stable first-mention order, then index them.
    let mut preds: Vec<String> = Vec::new();
    {
        let mut seen: HashMap<String, ()> = HashMap::new();
        let mut add = |n: &str, preds: &mut Vec<String>| {
            if seen.insert(n.to_string(), ()).is_none() {
                preds.push(n.to_string());
            }
        };
        for r in &program.rules {
            add(&r.head.pred, &mut preds);
            for l in &r.body {
                add(&l.atom.pred, &mut preds);
            }
        }
    }
    let index: HashMap<&str, usize> = preds
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();

    let n = preds.len();
    // edges[q] = list of (p, negated) meaning p depends on q.
    let mut out: Vec<Vec<(usize, bool)>> = vec![Vec::new(); n];
    let mut self_loop = vec![false; n];
    for r in &program.rules {
        let h = index[r.head.pred.as_str()];
        // An aggregate head consumes the *final* extents of its body, so
        // its dependencies behave like negated ones: strictly lower
        // stratum, no recursion through the aggregation.
        let aggregated = r.head.agg().is_some();
        for l in &r.body {
            let b = index[l.atom.pred.as_str()];
            out[b].push((h, l.negated || aggregated));
            if b == h {
                self_loop[h] = true;
            }
        }
    }

    // Tarjan SCC (iterative).
    let mut ids = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut scc_of = vec![usize::MAX; n];
    let mut counter = 0usize;
    let mut call: Vec<(usize, usize)> = Vec::new(); // (node, child cursor)
    for root in 0..n {
        if ids[root] != usize::MAX {
            continue;
        }
        call.push((root, 0));
        ids[root] = counter;
        low[root] = counter;
        counter += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci < out[v].len() {
                let (w, _) = out[v][*ci];
                *ci += 1;
                if ids[w] == usize::MAX {
                    ids[w] = counter;
                    low[w] = counter;
                    counter += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] && ids[w] < low[v] {
                    low[v] = ids[w];
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    if low[v] < low[parent] {
                        low[parent] = low[v];
                    }
                }
                if low[v] == ids[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc_of[w] = sccs.len();
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
            }
        }
    }

    // Tarjan emits SCCs in reverse topological order: dependents before
    // dependencies when edges point dependency -> dependent. Our edges are
    // `body -> head`, so an SCC is emitted only after everything reachable
    // from it; reversing gives dependencies-first.
    let topo: Vec<usize> = (0..sccs.len()).rev().collect();

    // Recursive cliques (multi-pred SCCs or self-loops; negative
    // self-loops are rejected below) + stratified-negation check + strata.
    let recursive: Vec<bool> = sccs
        .iter()
        .map(|c| c.len() > 1 || c.iter().any(|&p| self_loop[p]))
        .collect();
    let mut stratum = vec![0u32; sccs.len()];
    for &s in &topo {
        for &p in &sccs[s] {
            for &(h, neg) in &out[p] {
                let hs = scc_of[h];
                if hs == s {
                    if neg {
                        return Err(StratifyError::NegativeCycle {
                            pred: preds[p].clone(),
                        });
                    }
                    continue;
                }
                let need = stratum[s] + u32::from(neg);
                if stratum[hs] < need {
                    stratum[hs] = need;
                }
            }
        }
    }
    Ok(Stratification {
        preds,
        scc_of,
        sccs,
        topo,
        recursive,
        stratum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn strat(src: &str) -> Stratification {
        stratify(&parse_program(src).unwrap()).unwrap()
    }

    fn pred_index(s: &Stratification, name: &str) -> usize {
        s.preds.iter().position(|p| p == name).unwrap()
    }

    #[test]
    fn transitive_closure_is_one_recursive_scc() {
        let s = strat(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- path(X, Y), edge(Y, Z).",
        );
        let path = pred_index(&s, "path");
        let edge = pred_index(&s, "edge");
        assert_ne!(s.scc_of[path], s.scc_of[edge]);
        assert!(s.recursive[s.scc_of[path]]);
        assert!(!s.recursive[s.scc_of[edge]]);
    }

    #[test]
    fn mutual_recursion_collapses() {
        let s = strat(
            "even(X) :- zero(X).\n\
             even(X) :- succ(Y, X), odd(Y).\n\
             odd(X) :- succ(Y, X), even(Y).",
        );
        let even = pred_index(&s, "even");
        let odd = pred_index(&s, "odd");
        assert_eq!(s.scc_of[even], s.scc_of[odd]);
        assert!(s.recursive[s.scc_of[even]]);
    }

    #[test]
    fn topo_order_puts_dependencies_first() {
        let s = strat(
            "b(X) :- a(X).\n\
             c(X) :- b(X).\n\
             d(X) :- c(X), a(X).",
        );
        let pos: HashMap<usize, usize> = s.topo.iter().enumerate().map(|(i, &x)| (x, i)).collect();
        let idx = |n: &str| s.scc_of[pred_index(&s, n)];
        assert!(pos[&idx("a")] < pos[&idx("b")]);
        assert!(pos[&idx("b")] < pos[&idx("c")]);
        assert!(pos[&idx("c")] < pos[&idx("d")]);
    }

    #[test]
    fn negation_raises_stratum() {
        let s = strat(
            "unreachable(X) :- node(X), !reach(X).\n\
             reach(X) :- start(X).\n\
             reach(Y) :- reach(X), edge(X, Y).",
        );
        let ur = s.scc_of[pred_index(&s, "unreachable")];
        let re = s.scc_of[pred_index(&s, "reach")];
        assert!(s.stratum[ur] > s.stratum[re]);
    }

    #[test]
    fn negation_through_recursion_rejected() {
        let p = parse_program(
            "p(X) :- node(X), !q(X).\n\
             q(X) :- node(X), !p(X).",
        )
        .unwrap();
        assert!(matches!(
            stratify(&p),
            Err(StratifyError::NegativeCycle { .. })
        ));
    }

    #[test]
    fn self_loop_is_recursive() {
        let s = strat("t(X, Y) :- t(Y, X).\nt(X, Y) :- e(X, Y).");
        let t = pred_index(&s, "t");
        assert!(s.recursive[s.scc_of[t]]);
    }

    #[test]
    fn sccs_partition_predicates() {
        let s = strat(
            "p(X) :- q(X). q(X) :- r(X). r(X) :- base(X).\n\
             loop1(X) :- loop2(X). loop2(X) :- loop1(X), base(X).",
        );
        let total: usize = s.sccs.iter().map(Vec::len).sum();
        assert_eq!(total, s.preds.len());
        for (p, &scc) in s.scc_of.iter().enumerate() {
            assert!(s.sccs[scc].contains(&p));
        }
    }
}
