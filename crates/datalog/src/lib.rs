//! # incr-datalog — a from-scratch Datalog engine with incremental
//! maintenance
//!
//! The substrate the paper's scheduling problem comes from: Datalog
//! programs whose materializations must be kept consistent as base data
//! changes (§I). This crate implements the full pipeline:
//!
//! * [`ast`] / [`parser`] — rules, atoms, terms; a hand-written
//!   recursive-descent parser for conventional Datalog syntax.
//! * [`value`] — the constant domain (interned symbols + integers).
//! * [`query`](mod@query) — pattern queries against the materialization.
//! * [`rel`] — relation storage with tuple indices.
//! * [`stratify`] — predicate dependency graph, Tarjan SCCs, and
//!   negation-safe stratification.
//! * [`eval`] — naive and semi-naive bottom-up evaluation, plus grouped
//!   aggregate evaluation (`count`/`sum`/`min`/`max` heads).
//! * [`incr`] — incremental maintenance: delta-driven insertion and
//!   delete-rederive (DRed) deletion.
//! * [`fbf`] — the counting-based backward/forward maintenance backend:
//!   per-tuple derivation counts that absorb most deletions without
//!   propagation, with a DRed-style fallback inside recursive SCCs.
//! * [`mvcc`] — concurrent snapshot readers: a lock-free pin registry
//!   over the epoch-versioned arena, so queries serve a consistent
//!   published cut while maintenance cascades mutate the head.
//! * [`taskgraph`] — the bridge to the paper: compile a program into the
//!   scheduling DAG whose nodes are predicate evaluations, and drive any
//!   [`incr_sched::Scheduler`] with *real* data-dependent activations
//!   ("just because an input to a predicate changes does not mean that
//!   the predicate's output changes", §II-A).

pub mod ast;
pub mod engine;
pub mod eval;
pub mod fbf;
pub mod incr;
pub mod mvcc;
pub mod par;
pub mod parser;
pub mod query;
pub mod rel;
pub mod shard;
pub mod stratify;
pub mod stream;
pub mod taskgraph;
pub mod value;

#[cfg(test)]
mod proptests;

pub use ast::{Atom, Literal, Program, Rule, Term};
pub use engine::{FactEdit, IncrementalEngine, TypedEdit, UpdateReport};
pub use eval::{Access, IndexMode};
pub use fbf::MaintenanceStrategy;
pub use mvcc::{PinRegistry, ReaderHandle, Snapshot};
pub use par::EvalOptions;
pub use parser::parse_program;
pub use query::{parse_pattern, query, query_at, Pat};
pub use rel::{Database, Relation};
pub use shard::{
    shard_of_first, split_by_shard, PortableValue, RuleClass, ShardCause, ShardFault,
    ShardFaultHook, ShardPlan, ShardStatus, ShardUpdateReport, ShardedEngine,
};
pub use stream::DeltaQueue;
pub use value::{Tuple, Value};
