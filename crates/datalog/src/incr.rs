//! Incremental maintenance of one recursive clique: delta insertion plus
//! delete-rederive (DRed) deletion, with stratified negation.
//!
//! Given *final* input deltas (the upstream predicates have finished
//! updating — exactly the safety discipline the scheduler enforces), the
//! clique's task runs three phases:
//!
//! 1. **Overdelete** — find every tuple whose known derivation used a
//!    removed input tuple (or relied on the absence of an added one,
//!    for negated literals), evaluated against a *snapshot of the old
//!    state*; cascade within the clique; remove all candidates.
//! 2. **Rederive** — candidates with surviving alternative derivations
//!    are reinstated, checked per candidate with the head-bound plan
//!    ([`rule_derives`]) instead of re-evaluating whole rules.
//! 3. **Insert** — semi-naive propagation of added input tuples (and of
//!    derivations newly enabled by removed blockers) to fixpoint.
//!
//! Every phase fans its pinned deltas (or candidate lists) out across the
//! worker pool when [`EvalOptions`] allows — deltas are sorted before
//! chunking and merged with a sorted dedup, so the result is independent
//! of thread count.
//!
//! The output delta per predicate is the exact set difference between the
//! old and new extents, so downstream tasks see *net* changes only — a
//! task whose inputs changed but whose output did not fires no edges,
//! which is precisely the "activation may stop" behaviour of §II-A.

use crate::eval::{ensure_indices, rule_derives, seminaive_scc_opts, CRule, PinMode, Rels};
use crate::par::{collect_jobs, eval_pin_jobs, EvalOptions, PinJob};
use crate::rel::{Database, PredId, Relation};
use crate::value::Tuple;
use incr_obs::flight::{self, FlightCode};
use incr_obs::trace;
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Adds elapsed nanoseconds to a named always-on counter when dropped —
/// phase timing that survives early returns and needs no tracing.
pub(crate) struct ScopeCounter {
    pub(crate) counter: &'static str,
    pub(crate) t0: Instant,
}

impl Drop for ScopeCounter {
    fn drop(&mut self) {
        incr_obs::registry()
            .counter(self.counter)
            .add(self.t0.elapsed().as_nanos() as u64);
    }
}

/// Net change to one predicate's extent.
#[derive(Clone, Debug, Default)]
pub struct Delta {
    pub added: HashSet<Tuple>,
    pub removed: HashSet<Tuple>,
}

impl Delta {
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }
}

/// Read view overlaying the pre-update extents of the input predicates on
/// top of the live database (used by overdeletion, and by the FBF count
/// phase in [`crate::fbf`]).
pub(crate) struct OldView<'a> {
    pub(crate) db: &'a Database,
    pub(crate) old: &'a HashMap<PredId, Relation>,
}

impl Rels for OldView<'_> {
    fn relation(&self, p: PredId) -> &Relation {
        self.old.get(&p).unwrap_or_else(|| self.db.rel(p))
    }
}

/// Exact old-vs-new extent diff for the clique predicates.
pub(crate) fn net_deltas(
    db: &Database,
    scc_preds: &[PredId],
    old_scc: &HashMap<PredId, Relation>,
) -> HashMap<PredId, Delta> {
    let mut out: HashMap<PredId, Delta> = HashMap::new();
    for &p in scc_preds {
        let old_rel = &old_scc[&p];
        let new_rel = db.rel(p);
        let mut d = Delta::default();
        for t in new_rel.iter() {
            if !old_rel.contains(t) {
                d.added.insert(t.clone());
            }
        }
        for t in old_rel.iter() {
            if !new_rel.contains(t) {
                d.removed.insert(t.clone());
            }
        }
        out.insert(p, d);
    }
    out
}

/// Sorted list of a delta set — deterministic chunk boundaries for the
/// parallel fan-out.
pub(crate) fn sorted_list(set: &HashSet<Tuple>) -> Vec<Tuple> {
    let mut v: Vec<Tuple> = set.iter().cloned().collect();
    v.sort_unstable();
    v
}

/// Apply an update to one clique (sequential convenience wrapper over
/// [`update_scc_opts`]).
pub fn update_scc(
    db: &mut Database,
    rules: &[CRule],
    scc_preds: &[PredId],
    input: &HashMap<PredId, Delta>,
) -> HashMap<PredId, Delta> {
    update_scc_opts(db, rules, scc_preds, input, &EvalOptions::sequential())
}

/// Apply an update to one clique.
///
/// * `rules` — the rules whose heads are in this clique.
/// * `scc_preds` — the clique's predicates.
/// * `input` — final deltas of the *external* predicates this clique
///   reads (upstream cliques' outputs or base-table edits), already
///   applied to `db`.
///
/// Returns the clique's own net output delta per predicate.
pub fn update_scc_opts(
    db: &mut Database,
    rules: &[CRule],
    scc_preds: &[PredId],
    input: &HashMap<PredId, Delta>,
    opts: &EvalOptions,
) -> HashMap<PredId, Delta> {
    // Build indices BEFORE cloning old extents so the snapshots (and the
    // OldView evaluations over them) probe instead of scanning. Includes
    // the check plans for the rederive phase.
    ensure_indices(db, rules, true);

    // Old extents: inputs rolled back, clique preds as they stand.
    let mut old: HashMap<PredId, Relation> = HashMap::new();
    for (&p, d) in input {
        if d.is_empty() {
            continue;
        }
        let mut r = db.rel(p).clone();
        for t in &d.added {
            r.remove(t);
        }
        for t in &d.removed {
            r.insert(t.clone());
        }
        old.insert(p, r);
    }
    let old_scc: HashMap<PredId, Relation> = scc_preds
        .iter()
        .map(|&p| (p, db.rel(p).clone()))
        .collect();

    // Sorted input delta lists, shared by the overdelete seeds (removed /
    // added-through-negation) and the insert seeds.
    let input_lists: HashMap<PredId, (Vec<Tuple>, Vec<Tuple>)> = input
        .iter()
        .filter(|(_, d)| !d.is_empty())
        .map(|(&p, d)| (p, (sorted_list(&d.added), sorted_list(&d.removed))))
        .collect();

    // ---- Phase 1: overdeletion against the old view. ----
    // Each DRed phase is triply accounted: a trace span (opt-in, rich),
    // a flight-recorder span (always on, lands in black-box dumps), and
    // an always-on phase-time counter (`datalog.dred.*_ns`) that the
    // attribution and SLO layers read without tracing enabled.
    let dred_overdelete = trace::span("datalog", "dred.overdelete");
    let mut overdelete_f = flight::span(FlightCode::DredOverdelete);
    let overdelete_t0 = Instant::now();
    let mut deleted: HashMap<PredId, HashSet<Tuple>> =
        scc_preds.iter().map(|&p| (p, HashSet::new())).collect();
    {
        let view = OldView { db, old: &old };

        // Seeds from the input deltas.
        let mut jobs: Vec<PinJob<'_>> = Vec::new();
        for rule in rules {
            for (j, (atom, negated)) in rule.body.iter().enumerate() {
                let Some((added, removed)) = input_lists.get(&atom.pred) else {
                    continue;
                };
                if !*negated {
                    for chunk in opts.chunks(removed) {
                        jobs.push(PinJob {
                            rule,
                            pos: j,
                            mode: PinMode::Positive,
                            chunk,
                        });
                    }
                } else {
                    for chunk in opts.chunks(added) {
                        jobs.push(PinJob {
                            rule,
                            pos: j,
                            mode: PinMode::NegLost,
                            chunk,
                        });
                    }
                }
            }
        }
        let mut fresh = eval_pin_jobs(
            &view,
            &jobs,
            |head, t| old_scc[&head].contains(t),
            opts,
            "par.overdelete",
        );

        // Cascade within the clique (negation inside a clique is rejected
        // by stratification, so only positive pins occur). `deleted` is
        // frozen during each parallel evaluation and mutated only in the
        // merge between rounds.
        loop {
            let mut round: HashMap<PredId, Vec<Tuple>> = HashMap::new();
            for (p, t) in fresh {
                if deleted.get_mut(&p).expect("scc head").insert(t.clone()) {
                    round.entry(p).or_default().push(t);
                }
            }
            if round.is_empty() {
                break;
            }
            for list in round.values_mut() {
                list.sort_unstable();
            }
            let mut jobs: Vec<PinJob<'_>> = Vec::new();
            for rule in rules {
                for (j, (atom, negated)) in rule.body.iter().enumerate() {
                    if *negated {
                        continue;
                    }
                    let Some(list) = round.get(&atom.pred) else {
                        continue;
                    };
                    for chunk in opts.chunks(list) {
                        jobs.push(PinJob {
                            rule,
                            pos: j,
                            mode: PinMode::Positive,
                            chunk,
                        });
                    }
                }
            }
            if jobs.is_empty() {
                break;
            }
            fresh = eval_pin_jobs(
                &view,
                &jobs,
                |head, t| old_scc[&head].contains(t) && !deleted[&head].contains(t),
                opts,
                "par.overdelete",
            );
        }
    }
    for (&p, ts) in &deleted {
        for t in ts {
            db.rel_mut(p).remove(t);
        }
    }
    let overdeleted: usize = deleted.values().map(|s| s.len()).sum();
    incr_obs::registry()
        .counter("datalog.dred.overdelete_ns")
        .add(overdelete_t0.elapsed().as_nanos() as u64);
    overdelete_f.set_arg(overdeleted as u64);
    drop(overdelete_f);
    dred_overdelete.end_args(vec![("overdeleted", (overdeleted as u64).into())]);

    // ---- Phase 2: rederive overdeleted tuples with other derivations. ----
    // Each overdeleted tuple is checked individually with the head-bound
    // plan: does any clique rule still derive it from the current state?
    // Candidate lists fan out across the pool; rounds iterate because one
    // reinstated tuple can support another's alternative derivation.
    let dred_rederive = trace::span("datalog", "dred.rederive");
    let mut rederive_f = flight::span(FlightCode::DredRederive);
    let rederive_t0 = Instant::now();
    let mut seed: HashMap<PredId, HashSet<Tuple>> = HashMap::new();
    {
        let mut rules_by_head: HashMap<PredId, Vec<&CRule>> = HashMap::new();
        for rule in rules {
            rules_by_head.entry(rule.head.pred).or_default().push(rule);
        }
        loop {
            let cand_lists: Vec<(PredId, Vec<Tuple>)> = deleted
                .iter()
                .filter(|(p, _)| rules_by_head.contains_key(p))
                .map(|(&p, ts)| {
                    let mut v: Vec<Tuple> = ts
                        .iter()
                        .filter(|t| !db.rel(p).contains(t))
                        .cloned()
                        .collect();
                    v.sort_unstable();
                    (p, v)
                })
                .filter(|(_, v)| !v.is_empty())
                .collect();
            let total: usize = cand_lists.iter().map(|(_, v)| v.len()).sum();
            if total == 0 {
                break;
            }
            let mut jobs: Vec<(PredId, &[Tuple])> = Vec::new();
            for (p, list) in &cand_lists {
                for chunk in opts.chunks(list) {
                    jobs.push((*p, chunk));
                }
            }
            let dbr: &Database = db;
            let fresh: Vec<(PredId, Tuple)> = collect_jobs(
                opts,
                total,
                jobs.len(),
                |i, out: &mut Vec<(PredId, Tuple)>| {
                    let (p, chunk) = jobs[i];
                    let rs = &rules_by_head[&p];
                    for t in chunk {
                        if rs.iter().any(|r| rule_derives(dbr, r, t)) {
                            out.push((p, t.clone()));
                        }
                    }
                },
                "par.rederive",
            );
            if fresh.is_empty() {
                break;
            }
            for (p, t) in fresh {
                if db.rel_mut(p).insert(t.clone()) {
                    seed.entry(p).or_default().insert(t);
                }
            }
        }
    }
    let rederived_total: usize = seed.values().map(|s| s.len()).sum();
    incr_obs::registry()
        .counter("datalog.dred.rederive_ns")
        .add(rederive_t0.elapsed().as_nanos() as u64);
    rederive_f.set_arg(rederived_total as u64);
    drop(rederive_f);
    dred_rederive.end_args(vec![("rederived", (rederived_total as u64).into())]);

    // ---- Phase 3: insertions (added inputs + removed blockers). ----
    // All pins evaluate against the post-rederive state; anything one
    // insertion enables through a clique predicate is picked up by the
    // semi-naive rounds below (the seed carries every insert).
    let dred_insert = trace::span("datalog", "dred.insert");
    let mut insert_f = flight::span(FlightCode::DredInsert);
    let insert_t0 = Instant::now();
    {
        let mut jobs: Vec<PinJob<'_>> = Vec::new();
        for rule in rules {
            for (j, (atom, negated)) in rule.body.iter().enumerate() {
                let Some((added, removed)) = input_lists.get(&atom.pred) else {
                    continue;
                };
                if !*negated {
                    for chunk in opts.chunks(added) {
                        jobs.push(PinJob {
                            rule,
                            pos: j,
                            mode: PinMode::Positive,
                            chunk,
                        });
                    }
                } else {
                    for chunk in opts.chunks(removed) {
                        jobs.push(PinJob {
                            rule,
                            pos: j,
                            mode: PinMode::NegGained,
                            chunk,
                        });
                    }
                }
            }
        }
        let dbr: &Database = db;
        let fresh = eval_pin_jobs(
            dbr,
            &jobs,
            |head, t| !dbr.rel(head).contains(t),
            opts,
            "par.insert",
        );
        for (p, t) in fresh {
            if db.rel_mut(p).insert(t.clone()) {
                seed.entry(p).or_default().insert(t);
            }
        }
    }
    let inserted_seed: usize = seed.values().map(|s| s.len()).sum::<usize>() - rederived_total;
    if !seed.is_empty() {
        seminaive_scc_opts(db, rules, scc_preds, seed, false, opts);
    }
    incr_obs::registry()
        .counter("datalog.dred.insert_ns")
        .add(insert_t0.elapsed().as_nanos() as u64);
    insert_f.set_arg(inserted_seed as u64);
    drop(insert_f);
    dred_insert.end_args(vec![("seed_inserts", (inserted_seed as u64).into())]);

    // ---- Net output delta: exact old-vs-new diff. ----
    net_deltas(db, scc_preds, &old_scc)
}

/// Sequential convenience wrapper over [`reevaluate_scc_opts`].
pub fn reevaluate_scc(
    db: &mut Database,
    rules: &[CRule],
    scc_preds: &[PredId],
) -> HashMap<PredId, Delta> {
    reevaluate_scc_opts(db, rules, scc_preds, &EvalOptions::sequential())
}

/// Re-evaluate one clique from scratch against its (unchanged) inputs and
/// return the net delta — the primitive behind incremental *rule* changes
/// ("the rule definitions change", §I). The clique's extents are cleared
/// and re-derived with the current rule set; downstream propagation stays
/// incremental via the returned delta.
pub fn reevaluate_scc_opts(
    db: &mut Database,
    rules: &[CRule],
    scc_preds: &[PredId],
    opts: &EvalOptions,
) -> HashMap<PredId, Delta> {
    let _span = trace::span_with(
        "datalog",
        "clique.reevaluate",
        vec![("preds", scc_preds.len().into())],
    );
    let _fspan = flight::span_arg(FlightCode::Reevaluate, scc_preds.len() as u64);
    let reeval_t0 = Instant::now();
    let _reeval_timer = ScopeCounter {
        counter: "datalog.dred.reevaluate_ns",
        t0: reeval_t0,
    };
    let old_scc: HashMap<PredId, Relation> = scc_preds
        .iter()
        .map(|&p| (p, db.rel(p).clone()))
        .collect();
    for &p in scc_preds {
        let arity = db.rel(p).arity();
        // Fresh relations drop this clique's indices too; the semi-naive
        // bootstrap re-ensures whatever the plans need.
        *db.rel_mut(p) = Relation::new(arity);
    }
    seminaive_scc_opts(db, rules, scc_preds, HashMap::new(), true, opts);
    net_deltas(db, scc_preds, &old_scc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{compile_program, load_facts, naive_fixpoint};
    use crate::parser::parse_program;

    /// Build a database + compiled rules, fully materialized.
    fn setup(src: &str) -> (Database, Vec<CRule>) {
        let prog = parse_program(src).unwrap();
        let mut db = Database::new();
        let rules = compile_program(&prog, &mut db);
        load_facts(&prog, &mut db);
        naive_fixpoint(&mut db, &rules);
        (db, rules)
    }

    /// Recompute from scratch after editing base facts — ground truth.
    fn recompute(src: &str) -> Database {
        let (db, _) = setup(src);
        db
    }

    const TC: &str = "path(X, Y) :- edge(X, Y).\n\
                      path(X, Z) :- path(X, Y), edge(Y, Z).\n";

    fn tc_update_opts(
        db: &mut Database,
        rules: &[CRule],
        add: &[(&str, &str)],
        del: &[(&str, &str)],
        opts: &EvalOptions,
    ) -> HashMap<PredId, Delta> {
        let edge = db.pred_id("edge").unwrap();
        let path = db.pred_id("path").unwrap();
        let mut d = Delta::default();
        for (a, b) in add {
            let t = vec![db.sym(a), db.sym(b)];
            if db.rel_mut(edge).insert(t.clone()) {
                d.added.insert(t);
            }
        }
        for (a, b) in del {
            let t = vec![db.sym(a), db.sym(b)];
            if db.rel_mut(edge).remove(&t) {
                d.removed.insert(t);
            }
        }
        let input = HashMap::from([(edge, d)]);
        let path_rules: Vec<CRule> = rules
            .iter()
            .filter(|r| r.head.pred == path)
            .cloned()
            .collect();
        update_scc_opts(db, &path_rules, &[path], &input, opts)
    }

    fn tc_update(
        db: &mut Database,
        rules: &[CRule],
        add: &[(&str, &str)],
        del: &[(&str, &str)],
    ) -> HashMap<PredId, Delta> {
        tc_update_opts(db, rules, add, del, &EvalOptions::sequential())
    }

    #[test]
    fn insertion_matches_recompute() {
        let base = format!("{TC} edge(a, b). edge(b, c).");
        let (mut db, rules) = setup(&base);
        tc_update(&mut db, &rules, &[("c", "d")], &[]);
        let truth = recompute(&format!("{base} edge(c, d)."));
        let p1 = db.pred_id("path").unwrap();
        let p2 = truth.pred_id("path").unwrap();
        assert_eq!(db.rel(p1).len(), truth.rel(p2).len());
        assert!(db.has_fact("path", &["a", "d"]));
    }

    #[test]
    fn deletion_matches_recompute() {
        let (mut db, rules) = setup(&format!("{TC} edge(a, b). edge(b, c). edge(a, c)."));
        // Remove edge(b, c): path(a, c) survives via edge(a, c).
        let out = tc_update(&mut db, &rules, &[], &[("b", "c")]);
        assert!(db.has_fact("path", &["a", "c"]), "alternative derivation survives");
        assert!(!db.has_fact("path", &["b", "c"]));
        let path = db.pred_id("path").unwrap();
        let d = &out[&path];
        assert!(d.removed.contains(&vec![
            db.interner.get("b").map(crate::value::Value::Sym).unwrap(),
            db.interner.get("c").map(crate::value::Value::Sym).unwrap()
        ]));
        assert!(!d.removed.iter().any(|t| {
            t == &vec![
                db.interner.get("a").map(crate::value::Value::Sym).unwrap(),
                db.interner.get("c").map(crate::value::Value::Sym).unwrap(),
            ]
        }), "rederived fact is not a net removal");
    }

    #[test]
    fn deletion_cascades_through_recursion() {
        let (mut db, rules) = setup(&format!("{TC} edge(a, b). edge(b, c). edge(c, d)."));
        tc_update(&mut db, &rules, &[], &[("a", "b")]);
        let truth = recompute(&format!("{TC} edge(b, c). edge(c, d)."));
        let p = db.pred_id("path").unwrap();
        let q = truth.pred_id("path").unwrap();
        assert_eq!(db.rel(p).sorted().len(), truth.rel(q).sorted().len());
        assert!(!db.has_fact("path", &["a", "d"]));
        assert!(db.has_fact("path", &["b", "d"]));
    }

    #[test]
    fn cyclic_deletion_rederives_correctly() {
        // Cycle a->b->c->a plus chord a->c. Deleting b->c keeps a->c
        // reachable; facts inside the cycle must be rederived carefully.
        let (mut db, rules) = setup(&format!(
            "{TC} edge(a, b). edge(b, c). edge(c, a). edge(a, c)."
        ));
        tc_update(&mut db, &rules, &[], &[("b", "c")]);
        let truth = recompute(&format!("{TC} edge(a, b). edge(c, a). edge(a, c)."));
        let p = db.pred_id("path").unwrap();
        let q = truth.pred_id("path").unwrap();
        assert_eq!(db.rel(p).sorted(), {
            // Compare via display-independent canonical form: lengths and
            // membership (interners may differ in sym ids).
            let mut v = truth.rel(q).sorted();
            v.sort();
            // Both databases interned a,b,c in the same first-mention
            // order, so raw comparison is meaningful.
            v
        });
    }

    #[test]
    fn parallel_update_matches_sequential() {
        // The same mixed edit run under threads=1 and threads=4 (pool
        // forced) must leave identical extents and identical net deltas.
        let base = format!(
            "{TC} edge(a, b). edge(b, c). edge(c, a). edge(a, c). edge(c, d). edge(d, e)."
        );
        let run = |opts: &EvalOptions| {
            let (mut db, rules) = setup(&base);
            let out = tc_update_opts(
                &mut db,
                &rules,
                &[("e", "a"), ("b", "f")],
                &[("b", "c"), ("c", "d")],
                opts,
            );
            let path = db.pred_id("path").unwrap();
            let d = &out[&path];
            (
                db.rel(path).sorted(),
                sorted_list(&d.added),
                sorted_list(&d.removed),
            )
        };
        let seq = run(&EvalOptions::sequential());
        let mut par_opts = EvalOptions::with_threads(4);
        par_opts.min_parallel_tuples = 0;
        let par = run(&par_opts);
        assert_eq!(seq, par);
    }

    #[test]
    fn mixed_add_and_delete() {
        let (mut db, rules) = setup(&format!("{TC} edge(a, b). edge(b, c)."));
        tc_update(&mut db, &rules, &[("c", "d")], &[("a", "b")]);
        assert!(!db.has_fact("path", &["a", "c"]));
        assert!(db.has_fact("path", &["b", "d"]));
        assert!(!db.has_fact("path", &["a", "d"]));
    }

    #[test]
    fn no_net_change_yields_empty_delta() {
        // Deleting and re-adding the same edge in one update.
        let (mut db, rules) = setup(&format!("{TC} edge(a, b)."));
        let edge = db.pred_id("edge").unwrap();
        let path = db.pred_id("path").unwrap();
        // Delta with same tuple added and removed: relation unchanged.
        let input = HashMap::from([(edge, Delta::default())]);
        let path_rules: Vec<CRule> = rules
            .iter()
            .filter(|r| r.head.pred == path)
            .cloned()
            .collect();
        let out = update_scc(&mut db, &path_rules, &[path], &input);
        assert!(out[&path].is_empty());
    }

    #[test]
    fn negation_insertion_removes_dependents() {
        // banned(X) appears -> allowed(X) disappears.
        let src = "allowed(X) :- user(X), !banned(X).\n\
                   user(u1). user(u2). banned(u2).";
        let (mut db, rules) = setup(src);
        assert!(db.has_fact("allowed", &["u1"]));
        assert!(!db.has_fact("allowed", &["u2"]));
        // Ban u1.
        let banned = db.pred_id("banned").unwrap();
        let allowed = db.pred_id("allowed").unwrap();
        let t = vec![db.sym("u1")];
        db.rel_mut(banned).insert(t.clone());
        let mut d = Delta::default();
        d.added.insert(t);
        let input = HashMap::from([(banned, d)]);
        let arules: Vec<CRule> = rules
            .iter()
            .filter(|r| r.head.pred == allowed)
            .cloned()
            .collect();
        let out = update_scc(&mut db, &arules, &[allowed], &input);
        assert!(!db.has_fact("allowed", &["u1"]), "insertion through negation deletes");
        assert_eq!(out[&allowed].removed.len(), 1);
    }

    #[test]
    fn negation_deletion_adds_dependents() {
        let src = "allowed(X) :- user(X), !banned(X).\n\
                   user(u1). user(u2). banned(u2).";
        let (mut db, rules) = setup(src);
        // Unban u2.
        let banned = db.pred_id("banned").unwrap();
        let allowed = db.pred_id("allowed").unwrap();
        let t = vec![db.sym("u2")];
        db.rel_mut(banned).remove(&t);
        let mut d = Delta::default();
        d.removed.insert(t);
        let input = HashMap::from([(banned, d)]);
        let arules: Vec<CRule> = rules
            .iter()
            .filter(|r| r.head.pred == allowed)
            .cloned()
            .collect();
        let out = update_scc(&mut db, &arules, &[allowed], &input);
        assert!(db.has_fact("allowed", &["u2"]), "deletion through negation derives");
        assert_eq!(out[&allowed].added.len(), 1);
    }

    #[test]
    fn reevaluate_scc_computes_net_delta() {
        let (mut db, rules) = setup(&format!("{TC} edge(a, b). edge(b, c)."));
        let path = db.pred_id("path").unwrap();
        let path_rules: Vec<CRule> = rules
            .iter()
            .filter(|r| r.head.pred == path)
            .cloned()
            .collect();
        // Same rules: re-evaluation is a no-op delta.
        let out = reevaluate_scc(&mut db, &path_rules, &[path]);
        assert!(out[&path].is_empty());
        assert_eq!(db.rel(path).len(), 3);
        // Drop the recursive rule: closure shrinks to the base edges.
        let single: Vec<CRule> = path_rules
            .iter()
            .filter(|r| r.body.len() == 1)
            .cloned()
            .collect();
        let out = reevaluate_scc(&mut db, &single, &[path]);
        assert_eq!(out[&path].removed.len(), 1, "path(a, c) lost");
        assert_eq!(db.rel(path).len(), 2);
    }

    #[test]
    fn double_negation_reason_overdeletes() {
        // Derivation relying on two absences, both of which appear in one
        // update — the case requiring old-state evaluation.
        let src = "ok(X) :- item(X), !flag1(X), !flag2(X).\n\
                   item(i). flag1(z). flag2(z).";
        let (mut db, rules) = setup(src);
        assert!(db.has_fact("ok", &["i"]));
        let f1 = db.pred_id("flag1").unwrap();
        let f2 = db.pred_id("flag2").unwrap();
        let ok = db.pred_id("ok").unwrap();
        let t = vec![db.sym("i")];
        db.rel_mut(f1).insert(t.clone());
        db.rel_mut(f2).insert(t.clone());
        let mut d1 = Delta::default();
        d1.added.insert(t.clone());
        let mut d2 = Delta::default();
        d2.added.insert(t);
        let input = HashMap::from([(f1, d1), (f2, d2)]);
        let orules: Vec<CRule> = rules
            .iter()
            .filter(|r| r.head.pred == ok)
            .cloned()
            .collect();
        update_scc(&mut db, &orules, &[ok], &input);
        assert!(!db.has_fact("ok", &["i"]), "both blockers appeared at once");
    }
}
