//! Relation storage and the database of predicates.

use crate::value::{Interner, Tuple, Value};
use std::collections::{HashMap, HashSet};

/// Dense predicate handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredId(pub u32);

impl PredId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A set of tuples of fixed arity, with a persistent index on the first
/// column (joins in rule bodies overwhelmingly bind the first position;
/// the evaluator probes the index instead of scanning the extent).
#[derive(Clone, Debug, Default)]
pub struct Relation {
    arity: usize,
    tuples: HashSet<Tuple>,
    /// First-column index; empty for arity-0 relations.
    by_first: HashMap<Value, HashSet<Tuple>>,
}

impl Relation {
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            tuples: HashSet::new(),
            by_first: HashMap::new(),
        }
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Insert; true if new. Panics on arity mismatch (an engine bug, not
    /// a data error — arities are validated at parse time).
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(t.len(), self.arity, "arity mismatch on insert");
        if let Some(&first) = t.first() {
            if self.tuples.insert(t.clone()) {
                self.by_first.entry(first).or_default().insert(t);
                return true;
            }
            return false;
        }
        self.tuples.insert(t)
    }

    /// Remove; true if present.
    pub fn remove(&mut self, t: &[Value]) -> bool {
        let removed = self.tuples.remove(t);
        if removed {
            if let Some(&first) = t.first() {
                if let Some(bucket) = self.by_first.get_mut(&first) {
                    bucket.remove(t);
                    if bucket.is_empty() {
                        self.by_first.remove(&first);
                    }
                }
            }
        }
        removed
    }

    /// Tuples whose first column equals `v` (index probe).
    pub fn iter_first(&self, v: Value) -> impl Iterator<Item = &Tuple> + '_ {
        self.by_first.get(&v).into_iter().flatten()
    }

    pub fn contains(&self, t: &[Value]) -> bool {
        self.tuples.contains(t)
    }

    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// Tuples in sorted order (deterministic output for tests/display).
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.tuples.iter().cloned().collect();
        v.sort();
        v
    }
}

impl FromIterator<Tuple> for Relation {
    fn from_iter<T: IntoIterator<Item = Tuple>>(iter: T) -> Self {
        let staged: Vec<Tuple> = iter.into_iter().collect();
        let arity = staged.first().map_or(0, Vec::len);
        let mut rel = Relation::new(arity);
        for t in staged {
            assert_eq!(t.len(), arity, "mixed arities in relation literal");
            rel.insert(t);
        }
        rel
    }
}

/// All predicates and their extents, plus the symbol interner.
#[derive(Clone, Debug, Default)]
pub struct Database {
    pub interner: Interner,
    ids: HashMap<String, PredId>,
    names: Vec<String>,
    rels: Vec<Relation>,
}

impl Database {
    pub fn new() -> Self {
        Database::default()
    }

    /// Register (or fetch) a predicate with the given arity.
    pub fn pred(&mut self, name: &str, arity: usize) -> PredId {
        if let Some(&id) = self.ids.get(name) {
            assert_eq!(
                self.rels[id.index()].arity(),
                arity,
                "predicate {name} arity mismatch"
            );
            return id;
        }
        let id = PredId(self.names.len() as u32);
        self.ids.insert(name.to_string(), id);
        self.names.push(name.to_string());
        self.rels.push(Relation::new(arity));
        id
    }

    /// Fetch a registered predicate id.
    pub fn pred_id(&self, name: &str) -> Option<PredId> {
        self.ids.get(name).copied()
    }

    pub fn pred_name(&self, id: PredId) -> &str {
        &self.names[id.index()]
    }

    pub fn pred_count(&self) -> usize {
        self.names.len()
    }

    pub fn rel(&self, id: PredId) -> &Relation {
        &self.rels[id.index()]
    }

    pub fn rel_mut(&mut self, id: PredId) -> &mut Relation {
        &mut self.rels[id.index()]
    }

    /// Intern a symbolic constant.
    pub fn sym(&mut self, s: &str) -> Value {
        Value::Sym(self.interner.intern(s))
    }

    /// Convenience: insert a fact given symbol texts.
    pub fn insert_fact(&mut self, pred: &str, args: &[&str]) -> bool {
        let tuple: Tuple = args.iter().map(|a| self.sym(a)).collect();
        let id = self.pred(pred, args.len());
        self.rels[id.index()].insert(tuple)
    }

    /// Convenience: check a fact given symbol texts (false if any symbol
    /// or the predicate is unknown).
    pub fn has_fact(&self, pred: &str, args: &[&str]) -> bool {
        let Some(id) = self.pred_id(pred) else {
            return false;
        };
        let mut tuple = Tuple::with_capacity(args.len());
        for a in args {
            match self.interner.get(a) {
                Some(s) => tuple.push(Value::Sym(s)),
                None => return false,
            }
        }
        self.rel(id).contains(&tuple)
    }

    /// Total tuples across all predicates.
    pub fn total_facts(&self) -> usize {
        self.rels.iter().map(Relation::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_set_semantics() {
        let mut r = Relation::new(2);
        let t = vec![Value::Int(1), Value::Int(2)];
        assert!(r.insert(t.clone()));
        assert!(!r.insert(t.clone()));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&t));
        assert!(r.remove(&t));
        assert!(!r.remove(&t));
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked_on_insert() {
        let mut r = Relation::new(2);
        r.insert(vec![Value::Int(1)]);
    }

    #[test]
    fn database_registers_and_reuses_preds() {
        let mut db = Database::new();
        let p1 = db.pred("edge", 2);
        let p2 = db.pred("edge", 2);
        assert_eq!(p1, p2);
        assert_eq!(db.pred_name(p1), "edge");
        assert_eq!(db.pred_count(), 1);
    }

    #[test]
    fn fact_roundtrip() {
        let mut db = Database::new();
        assert!(db.insert_fact("edge", &["a", "b"]));
        assert!(!db.insert_fact("edge", &["a", "b"]));
        assert!(db.has_fact("edge", &["a", "b"]));
        assert!(!db.has_fact("edge", &["b", "a"]));
        assert!(!db.has_fact("nope", &["a"]));
        assert!(!db.has_fact("edge", &["a", "unseen"]));
        assert_eq!(db.total_facts(), 1);
    }

    #[test]
    fn first_column_index_tracks_mutations() {
        let mut r = Relation::new(2);
        let a = Value::Int(1);
        r.insert(vec![a, Value::Int(10)]);
        r.insert(vec![a, Value::Int(11)]);
        r.insert(vec![Value::Int(2), Value::Int(20)]);
        assert_eq!(r.iter_first(a).count(), 2);
        assert_eq!(r.iter_first(Value::Int(2)).count(), 1);
        assert_eq!(r.iter_first(Value::Int(9)).count(), 0);
        assert!(r.remove(&[a, Value::Int(10)]));
        assert_eq!(r.iter_first(a).count(), 1);
        assert!(r.remove(&[a, Value::Int(11)]));
        assert_eq!(r.iter_first(a).count(), 0);
    }

    #[test]
    fn sorted_is_deterministic() {
        let mut r = Relation::new(1);
        r.insert(vec![Value::Int(3)]);
        r.insert(vec![Value::Int(1)]);
        r.insert(vec![Value::Int(2)]);
        assert_eq!(
            r.sorted(),
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(3)]
            ]
        );
    }
}
