//! Relation storage and the database of predicates.
//!
//! Tuples live once, in a row arena; membership lookup and every index
//! reference rows by dense id instead of cloning tuples. Secondary
//! indices are built on demand for whatever column sets the compiled
//! join plans need (see `eval::ensure_indices`) and are maintained
//! incrementally on insert/remove. Duplicate inserts and misses touch
//! only the membership chain — the tuple is hashed once and no index is
//! disturbed unless the extent actually changes.
//!
//! ## Epoch versioning (MVCC)
//!
//! Every row carries `born`/`died` epoch stamps so the arena is a
//! multi-version store. The database has a *published* epoch `P`; all
//! mutations stamp at the *open* epoch `P + 1`:
//!
//! * insert ⇒ a fresh row with `born = P + 1`, `died = NEVER`;
//! * remove ⇒ a tombstone: the row's `died` is set to `P + 1`, the
//!   tuple stays in the arena, the membership chain, and every index.
//!
//! Head reads (the writer's view — everything evaluation does) see rows
//! with `died == NEVER`. A snapshot pinned at epoch `E` sees rows with
//! `born <= E < died`, so a reader holding `E = P` observes the last
//! published cut bit-for-bit no matter what the open epoch scribbles.
//! [`Database::publish`] turns the open epoch into the published one —
//! that is the *only* point at which concurrent snapshots can observe a
//! new state.
//!
//! Reclamation is deferred: tombstoned rows queue in a graveyard
//! (ordered by `died`, which is monotone) and [`Relation::vacuum`]
//! recycles them onto the free list only once `died <= watermark`,
//! where the watermark is `min(published, min pinned epoch)` — i.e. no
//! live or future snapshot can still see the row. Until then the row id
//! is *not* reused, so a pinned reader can never observe an aliased
//! tuple through a recycled slot.

use crate::value::{Interner, Tuple, Value};
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// Dense predicate handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredId(pub u32);

impl PredId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Row handle inside one relation's arena.
type Row = u32;

/// `died` stamp of a row that is live at head.
const NEVER: u64 = u64::MAX;

/// Pass-through hasher for keys that already are hashes (the membership
/// chain map is keyed by the tuple's own 64-bit hash).
#[derive(Clone, Default)]
struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _: &[u8]) {
        unreachable!("identity hasher only takes u64 keys")
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// Deterministic tuple hash (fixed-key SipHash): row placement must not
/// depend on `RandomState`, so clones share chain layout with originals.
fn tuple_hash(t: &[Value]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

/// One arena slot: the tuple plus its visibility interval. `tuple` is
/// `None` only after a vacuum (the slot sits on the free list).
#[derive(Clone, Debug)]
struct Slot {
    tuple: Option<Tuple>,
    born: u64,
    died: u64,
    /// Derivation-count column for counting-based maintenance (FBF):
    /// how many non-recursive derivations support this tuple. Head-state
    /// metadata — it rides the row through `clone()` and across MVCC
    /// epochs, but snapshot readers never consult it (membership at a
    /// pinned epoch is decided by `born`/`died` alone). Fresh rows start
    /// at 0; a re-insert after a tombstone allocates a new row, so its
    /// support must be re-established by the maintenance layer.
    support: u32,
}

impl Slot {
    #[inline]
    fn live_at_head(&self) -> bool {
        self.died == NEVER
    }

    #[inline]
    fn visible_at(&self, epoch: u64) -> bool {
        self.born <= epoch && epoch < self.died
    }
}

/// One secondary index: rows grouped by their projection onto `cols`.
/// Buckets hold every non-vacuumed row (live *and* tombstoned); probes
/// filter by visibility, so one index serves head and snapshot reads.
#[derive(Clone, Debug, Default)]
struct SecondaryIndex {
    cols: Vec<usize>,
    buckets: HashMap<Vec<Value>, Vec<Row>>,
}

impl SecondaryIndex {
    fn key(&self, t: &[Value]) -> Vec<Value> {
        self.cols.iter().map(|&c| t[c]).collect()
    }

    fn insert(&mut self, t: &[Value], row: Row) {
        self.buckets.entry(self.key(t)).or_default().push(row);
    }

    fn remove(&mut self, t: &[Value], row: Row) {
        let key = self.key(t);
        if let Some(bucket) = self.buckets.get_mut(&key) {
            if let Some(pos) = bucket.iter().position(|&r| r == row) {
                bucket.swap_remove(pos);
            }
            if bucket.is_empty() {
                self.buckets.remove(&key);
            }
        }
    }
}

/// A set of tuples of fixed arity. The arena (`rows` + `free`) owns every
/// tuple; `lookup` chains row ids by tuple hash for O(1) membership; each
/// entry of `indices` groups row ids by a bound-column projection for
/// O(bucket) join probes. Rows are epoch-stamped — see the module docs
/// for the visibility and reclamation rules.
#[derive(Clone, Debug)]
pub struct Relation {
    arity: usize,
    rows: Vec<Slot>,
    free: Vec<Row>,
    /// Tombstoned rows in `died` order (epochs only grow, so push_back
    /// keeps this sorted); `vacuum` pops the reclaimable prefix.
    graveyard: VecDeque<Row>,
    live: usize,
    /// The open epoch mutations stamp at (`Database` keeps this synced
    /// to `published + 1`; standalone relations never publish, so any
    /// value is consistent for pure head use).
    write_epoch: u64,
    lookup: HashMap<u64, Vec<Row>, BuildHasherDefault<IdentityHasher>>,
    indices: HashMap<Vec<usize>, SecondaryIndex>,
}

impl Default for Relation {
    fn default() -> Self {
        Relation::new(0)
    }
}

/// A resolved index probe: the rows matching one key (possibly none),
/// filtered by visibility — at head (`at == None`) or at a pinned
/// snapshot epoch.
pub struct Probe<'a> {
    rel: &'a Relation,
    bucket: &'a [Row],
    at: Option<u64>,
}

impl<'a> Probe<'a> {
    #[inline]
    fn visible(rel: &Relation, r: Row, at: Option<u64>) -> bool {
        let s = &rel.rows[r as usize];
        match at {
            None => s.live_at_head(),
            Some(e) => s.visible_at(e),
        }
    }

    /// Visible rows under this probe's epoch (O(bucket): tombstones in
    /// the bucket are skipped, not counted).
    pub fn len(&self) -> usize {
        let (rel, at) = (self.rel, self.at);
        self.bucket
            .iter()
            .filter(|&&r| Self::visible(rel, r, at))
            .count()
    }

    pub fn is_empty(&self) -> bool {
        let (rel, at) = (self.rel, self.at);
        !self.bucket.iter().any(|&r| Self::visible(rel, r, at))
    }

    pub fn iter(&self) -> impl Iterator<Item = &'a Tuple> + 'a {
        let (rel, at) = (self.rel, self.at);
        self.bucket
            .iter()
            .filter(move |&&r| Self::visible(rel, r, at))
            .map(move |&r| {
                rel.rows[r as usize]
                    .tuple
                    .as_ref()
                    .expect("visible row holds its tuple")
            })
    }
}

impl Relation {
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            rows: Vec::new(),
            free: Vec::new(),
            graveyard: VecDeque::new(),
            live: 0,
            write_epoch: 1,
            lookup: HashMap::default(),
            indices: HashMap::new(),
        }
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The epoch mutations currently stamp at.
    pub fn write_epoch(&self) -> u64 {
        self.write_epoch
    }

    /// Move the stamp epoch forward (no-op if `epoch` is not larger —
    /// stamps must stay monotone or the graveyard order breaks).
    pub(crate) fn set_write_epoch(&mut self, epoch: u64) {
        if epoch > self.write_epoch {
            self.write_epoch = epoch;
        }
    }

    /// Tombstoned rows still held for snapshot readers.
    pub fn retained(&self) -> usize {
        self.graveyard.len()
    }

    /// Total arena slots (live + tombstoned + free) — growth diagnostics.
    pub fn arena_len(&self) -> usize {
        self.rows.len()
    }

    fn find_row(&self, t: &[Value]) -> Option<Row> {
        let chain = self.lookup.get(&tuple_hash(t))?;
        chain.iter().copied().find(|&r| {
            let s = &self.rows[r as usize];
            s.live_at_head() && s.tuple.as_deref() == Some(t)
        })
    }

    /// Insert; true if new. Panics on arity mismatch (an engine bug, not
    /// a data error — arities are validated at parse time). Duplicates
    /// hash once and leave every index untouched.
    ///
    /// A re-insert after a same-tuple tombstone allocates a *new* row:
    /// the tombstone keeps serving pinned snapshots, the new row carries
    /// the head extent, and visibility filtering guarantees at most one
    /// of them is seen at any single epoch.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(t.len(), self.arity, "arity mismatch on insert");
        let h = tuple_hash(&t);
        if let Some(chain) = self.lookup.get(&h) {
            if chain.iter().any(|&r| {
                let s = &self.rows[r as usize];
                s.live_at_head() && s.tuple.as_deref() == Some(t.as_slice())
            }) {
                return false;
            }
        }
        let slot = Slot {
            tuple: Some(t),
            born: self.write_epoch,
            died: NEVER,
            support: 0,
        };
        let row = match self.free.pop() {
            Some(r) => {
                self.rows[r as usize] = slot;
                r
            }
            None => {
                self.rows.push(slot);
                (self.rows.len() - 1) as Row
            }
        };
        let stored = self.rows[row as usize]
            .tuple
            .as_deref()
            .expect("just stored");
        for idx in self.indices.values_mut() {
            idx.insert(stored, row);
        }
        self.lookup.entry(h).or_default().push(row);
        self.live += 1;
        true
    }

    /// Remove; true if present. Misses hash once and leave every index
    /// untouched. Presence removal is a tombstone write (`died` stamped
    /// at the open epoch): the row stays in the arena, chain, and
    /// indices for pinned snapshot readers until [`Self::vacuum`]
    /// reclaims it past the watermark.
    pub fn remove(&mut self, t: &[Value]) -> bool {
        let Some(row) = self.find_row(t) else {
            return false;
        };
        self.rows[row as usize].died = self.write_epoch;
        self.graveyard.push_back(row);
        self.live -= 1;
        true
    }

    /// The derivation-count column of the live row holding `t` (0 when
    /// the tuple is absent from the head extent). Only meaningful while
    /// counting-based (FBF) maintenance keeps it up to date.
    pub fn support(&self, t: &[Value]) -> u32 {
        self.find_row(t)
            .map_or(0, |r| self.rows[r as usize].support)
    }

    /// Set the derivation count on the live row holding `t`; false (and
    /// no effect) when the tuple is absent.
    pub fn set_support(&mut self, t: &[Value], support: u32) -> bool {
        match self.find_row(t) {
            Some(r) => {
                self.rows[r as usize].support = support;
                true
            }
            None => false,
        }
    }

    /// Recycle every tombstone no snapshot at or after `watermark + 1`
    /// can see (`died <= watermark`): unlink it from the membership
    /// chain and all indices, drop the tuple, and push the row id onto
    /// the free list. Returns the number of rows reclaimed.
    pub fn vacuum(&mut self, watermark: u64) -> usize {
        let mut reclaimed = 0;
        while let Some(&row) = self.graveyard.front() {
            if self.rows[row as usize].died > watermark {
                break; // graveyard is died-ordered: nothing further qualifies
            }
            self.graveyard.pop_front();
            let tuple = self.rows[row as usize]
                .tuple
                .take()
                .expect("tombstoned row holds its tuple");
            let h = tuple_hash(&tuple);
            if let Some(chain) = self.lookup.get_mut(&h) {
                if let Some(pos) = chain.iter().position(|&r| r == row) {
                    chain.swap_remove(pos);
                }
                if chain.is_empty() {
                    self.lookup.remove(&h);
                }
            }
            for idx in self.indices.values_mut() {
                idx.remove(&tuple, row);
            }
            self.free.push(row);
            reclaimed += 1;
        }
        reclaimed
    }

    /// Build the secondary index over `cols` if absent; true if it was
    /// built now (callers meter index builds). Tombstoned rows are
    /// indexed too — they must stay probe-able at snapshot epochs.
    pub fn ensure_index(&mut self, cols: &[usize]) -> bool {
        assert!(
            !cols.is_empty() && cols.iter().all(|&c| c < self.arity),
            "bad index columns {cols:?} for arity {}",
            self.arity
        );
        if self.indices.contains_key(cols) {
            return false;
        }
        let mut idx = SecondaryIndex {
            cols: cols.to_vec(),
            buckets: HashMap::new(),
        };
        for (r, slot) in self.rows.iter().enumerate() {
            if let Some(t) = &slot.tuple {
                idx.insert(t, r as Row);
            }
        }
        self.indices.insert(cols.to_vec(), idx);
        true
    }

    pub fn has_index(&self, cols: &[usize]) -> bool {
        self.indices.contains_key(cols)
    }

    pub fn index_count(&self) -> usize {
        self.indices.len()
    }

    /// Total row references held by the index over `cols` (None when the
    /// index does not exist). Counts live *and* tombstoned rows — every
    /// non-vacuumed row appears exactly once.
    pub fn index_entries(&self, cols: &[usize]) -> Option<usize> {
        self.indices
            .get(cols)
            .map(|i| i.buckets.values().map(Vec::len).sum())
    }

    /// Probe the secondary index over `cols` with `key` (the values of
    /// those columns, in `cols` order), seeing the head extent. `None`
    /// when no such index exists — the caller falls back to a scan.
    pub fn probe(&self, cols: &[usize], key: &[Value]) -> Option<Probe<'_>> {
        self.probe_filtered(cols, key, None)
    }

    /// [`Self::probe`] at a pinned snapshot epoch: the same index, the
    /// same join plans, just a different visibility filter.
    pub fn probe_at(&self, cols: &[usize], key: &[Value], epoch: u64) -> Option<Probe<'_>> {
        self.probe_filtered(cols, key, Some(epoch))
    }

    fn probe_filtered(&self, cols: &[usize], key: &[Value], at: Option<u64>) -> Option<Probe<'_>> {
        let idx = self.indices.get(cols)?;
        let bucket = idx.buckets.get(key).map_or(&[][..], Vec::as_slice);
        Some(Probe {
            rel: self,
            bucket,
            at,
        })
    }

    /// Tuples whose first column equals `v`.
    pub fn iter_first(&self, v: Value) -> impl Iterator<Item = &Tuple> + '_ {
        self.iter().filter(move |t| t.first() == Some(&v))
    }

    pub fn contains(&self, t: &[Value]) -> bool {
        self.find_row(t).is_some()
    }

    /// Membership at a pinned snapshot epoch.
    pub fn contains_at(&self, t: &[Value], epoch: u64) -> bool {
        let Some(chain) = self.lookup.get(&tuple_hash(t)) else {
            return false;
        };
        chain.iter().any(|&r| {
            let s = &self.rows[r as usize];
            s.visible_at(epoch) && s.tuple.as_deref() == Some(t)
        })
    }

    pub fn len(&self) -> usize {
        self.live
    }

    /// Cardinality at a pinned snapshot epoch (O(arena)).
    pub fn len_at(&self, epoch: u64) -> usize {
        self.iter_at(epoch).count()
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.rows.iter().filter_map(|s| {
            if s.live_at_head() {
                s.tuple.as_ref()
            } else {
                None
            }
        })
    }

    /// Tuples visible at a pinned snapshot epoch.
    pub fn iter_at(&self, epoch: u64) -> impl Iterator<Item = &Tuple> + '_ {
        self.rows.iter().filter_map(move |s| {
            if s.visible_at(epoch) {
                s.tuple.as_ref()
            } else {
                None
            }
        })
    }

    /// Tuples in sorted order (deterministic output for tests/display).
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.iter().cloned().collect();
        v.sort();
        v
    }

    /// [`Self::sorted`] at a pinned snapshot epoch.
    pub fn sorted_at(&self, epoch: u64) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.iter_at(epoch).cloned().collect();
        v.sort();
        v
    }
}

impl FromIterator<Tuple> for Relation {
    fn from_iter<T: IntoIterator<Item = Tuple>>(iter: T) -> Self {
        let staged: Vec<Tuple> = iter.into_iter().collect();
        let arity = staged.first().map_or(0, Vec::len);
        let mut rel = Relation::new(arity);
        for t in staged {
            assert_eq!(t.len(), arity, "mixed arities in relation literal");
            rel.insert(t);
        }
        rel
    }
}

/// All predicates and their extents, plus the symbol interner and the
/// published epoch snapshots pin (see the module docs).
#[derive(Clone, Debug, Default)]
pub struct Database {
    pub interner: Interner,
    ids: HashMap<String, PredId>,
    names: Vec<String>,
    rels: Vec<Relation>,
    /// Last published epoch; mutations stamp at `epoch + 1`.
    epoch: u64,
}

impl Database {
    pub fn new() -> Self {
        Database::default()
    }

    /// The published epoch — what [`Self::publish`] last committed and
    /// what a new snapshot pins.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Commit the open epoch: everything stamped since the previous
    /// publish becomes visible to snapshots pinned from now on, then
    /// each relation vacuums tombstones past the watermark
    /// `min(published, min_pinned)` — pass `u64::MAX` for `min_pinned`
    /// when no snapshot is live. Returns the new published epoch.
    pub fn publish(&mut self, min_pinned: u64) -> u64 {
        self.epoch += 1;
        let watermark = min_pinned.min(self.epoch);
        let open = self.epoch + 1;
        for rel in &mut self.rels {
            rel.set_write_epoch(open);
            rel.vacuum(watermark);
        }
        self.epoch
    }

    /// Tombstoned rows currently retained for snapshot readers, across
    /// all relations (the `mvcc.rows_retained` gauge).
    pub fn rows_retained(&self) -> usize {
        self.rels.iter().map(Relation::retained).sum()
    }

    /// Register (or fetch) a predicate with the given arity.
    pub fn pred(&mut self, name: &str, arity: usize) -> PredId {
        if let Some(&id) = self.ids.get(name) {
            assert_eq!(
                self.rels[id.index()].arity(),
                arity,
                "predicate {name} arity mismatch"
            );
            return id;
        }
        let id = PredId(self.names.len() as u32);
        self.ids.insert(name.to_string(), id);
        self.names.push(name.to_string());
        let mut rel = Relation::new(arity);
        rel.set_write_epoch(self.epoch + 1);
        self.rels.push(rel);
        id
    }

    /// Fetch a registered predicate id.
    pub fn pred_id(&self, name: &str) -> Option<PredId> {
        self.ids.get(name).copied()
    }

    pub fn pred_name(&self, id: PredId) -> &str {
        &self.names[id.index()]
    }

    pub fn pred_count(&self) -> usize {
        self.names.len()
    }

    pub fn rel(&self, id: PredId) -> &Relation {
        &self.rels[id.index()]
    }

    /// Mutable relation access. Re-syncs the relation's write epoch to
    /// the open epoch first, so a relation swapped in wholesale (or a
    /// stale clone) self-heals before its next mutation.
    pub fn rel_mut(&mut self, id: PredId) -> &mut Relation {
        let open = self.epoch + 1;
        let rel = &mut self.rels[id.index()];
        rel.set_write_epoch(open);
        rel
    }

    /// Intern a symbolic constant.
    pub fn sym(&mut self, s: &str) -> Value {
        Value::Sym(self.interner.intern(s))
    }

    /// Convenience: insert a fact given symbol texts.
    pub fn insert_fact(&mut self, pred: &str, args: &[&str]) -> bool {
        let tuple: Tuple = args.iter().map(|a| self.sym(a)).collect();
        let id = self.pred(pred, args.len());
        self.rel_mut(id).insert(tuple)
    }

    /// Convenience: check a fact given symbol texts (false if any symbol
    /// or the predicate is unknown).
    pub fn has_fact(&self, pred: &str, args: &[&str]) -> bool {
        match self.fact_tuple(pred, args) {
            Some((id, tuple)) => self.rel(id).contains(&tuple),
            None => false,
        }
    }

    /// [`Self::has_fact`] at a pinned snapshot epoch.
    pub fn has_fact_at(&self, pred: &str, args: &[&str], epoch: u64) -> bool {
        match self.fact_tuple(pred, args) {
            Some((id, tuple)) => self.rel(id).contains_at(&tuple, epoch),
            None => false,
        }
    }

    fn fact_tuple(&self, pred: &str, args: &[&str]) -> Option<(PredId, Tuple)> {
        let id = self.pred_id(pred)?;
        let mut tuple = Tuple::with_capacity(args.len());
        for a in args {
            tuple.push(Value::Sym(self.interner.get(a)?));
        }
        Some((id, tuple))
    }

    /// Total tuples across all predicates.
    pub fn total_facts(&self) -> usize {
        self.rels.iter().map(Relation::len).sum()
    }

    /// Total tuples visible at a pinned snapshot epoch.
    pub fn total_facts_at(&self, epoch: u64) -> usize {
        self.rels.iter().map(|r| r.len_at(epoch)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_set_semantics() {
        let mut r = Relation::new(2);
        let t = vec![Value::Int(1), Value::Int(2)];
        assert!(r.insert(t.clone()));
        assert!(!r.insert(t.clone()));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&t));
        assert!(r.remove(&t));
        assert!(!r.remove(&t));
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked_on_insert() {
        let mut r = Relation::new(2);
        r.insert(vec![Value::Int(1)]);
    }

    #[test]
    fn database_registers_and_reuses_preds() {
        let mut db = Database::new();
        let p1 = db.pred("edge", 2);
        let p2 = db.pred("edge", 2);
        assert_eq!(p1, p2);
        assert_eq!(db.pred_name(p1), "edge");
        assert_eq!(db.pred_count(), 1);
    }

    #[test]
    fn fact_roundtrip() {
        let mut db = Database::new();
        assert!(db.insert_fact("edge", &["a", "b"]));
        assert!(!db.insert_fact("edge", &["a", "b"]));
        assert!(db.has_fact("edge", &["a", "b"]));
        assert!(!db.has_fact("edge", &["b", "a"]));
        assert!(!db.has_fact("nope", &["a"]));
        assert!(!db.has_fact("edge", &["a", "unseen"]));
        assert_eq!(db.total_facts(), 1);
    }

    #[test]
    fn first_column_index_tracks_mutations() {
        let mut r = Relation::new(2);
        let a = Value::Int(1);
        r.insert(vec![a, Value::Int(10)]);
        r.insert(vec![a, Value::Int(11)]);
        r.insert(vec![Value::Int(2), Value::Int(20)]);
        assert_eq!(r.iter_first(a).count(), 2);
        assert_eq!(r.iter_first(Value::Int(2)).count(), 1);
        assert_eq!(r.iter_first(Value::Int(9)).count(), 0);
        assert!(r.remove(&[a, Value::Int(10)]));
        assert_eq!(r.iter_first(a).count(), 1);
        assert!(r.remove(&[a, Value::Int(11)]));
        assert_eq!(r.iter_first(a).count(), 0);
    }

    #[test]
    fn secondary_index_probes_any_column_set() {
        let mut r = Relation::new(3);
        for (a, b, c) in [(1, 10, 100), (1, 11, 100), (2, 10, 200), (2, 10, 100)] {
            r.insert(vec![Value::Int(a), Value::Int(b), Value::Int(c)]);
        }
        assert!(r.probe(&[1, 2], &[Value::Int(10), Value::Int(100)]).is_none());
        assert!(r.ensure_index(&[1, 2]));
        assert!(!r.ensure_index(&[1, 2]), "second ensure is a no-op");
        let p = r.probe(&[1, 2], &[Value::Int(10), Value::Int(100)]).unwrap();
        assert_eq!(p.len(), 2, "(1,10,100) and (2,10,100)");
        let mut seen: Vec<Tuple> = p.iter().cloned().collect();
        seen.sort();
        assert_eq!(seen[0][0], Value::Int(1));
        assert_eq!(seen[1][0], Value::Int(2));
        let empty = r.probe(&[1, 2], &[Value::Int(99), Value::Int(1)]).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn secondary_index_maintained_on_mutation() {
        let mut r = Relation::new(2);
        r.ensure_index(&[1]);
        r.insert(vec![Value::Int(1), Value::Int(7)]);
        r.insert(vec![Value::Int(2), Value::Int(7)]);
        assert_eq!(r.probe(&[1], &[Value::Int(7)]).unwrap().len(), 2);
        assert!(r.remove(&[Value::Int(1), Value::Int(7)]));
        assert_eq!(r.probe(&[1], &[Value::Int(7)]).unwrap().len(), 1);
        // The tombstone stays indexed (snapshot readers may need it)
        // until a vacuum past its death epoch reclaims the slot.
        assert_eq!(r.index_entries(&[1]), Some(2));
        assert_eq!(r.retained(), 1);
        assert_eq!(r.vacuum(u64::MAX), 1);
        assert_eq!(r.index_entries(&[1]), Some(1));
        // The freed arena slot is reused; indices stay consistent.
        let before = r.arena_len();
        r.insert(vec![Value::Int(3), Value::Int(8)]);
        assert_eq!(r.arena_len(), before, "vacuumed slot recycled");
        assert_eq!(r.probe(&[1], &[Value::Int(8)]).unwrap().len(), 1);
        assert_eq!(r.index_entries(&[1]), Some(2));
    }

    #[test]
    fn duplicate_insert_and_missing_remove_leave_indices_untouched() {
        // The single-hash guarantee: a duplicate insert (or a miss remove)
        // must not disturb any index bucket — the extent is consulted
        // first and indices are only touched on actual change.
        let mut r = Relation::new(2);
        r.ensure_index(&[0]);
        r.ensure_index(&[1]);
        let t = vec![Value::Int(4), Value::Int(5)];
        assert!(r.insert(t.clone()));
        let before_0 = r.index_entries(&[0]);
        let before_1 = r.index_entries(&[1]);
        assert!(!r.insert(t.clone()), "duplicate insert");
        assert_eq!(r.index_entries(&[0]), before_0);
        assert_eq!(r.index_entries(&[1]), before_1);
        assert_eq!(r.len(), 1);
        assert!(!r.remove(&[Value::Int(9), Value::Int(9)]), "missing remove");
        assert_eq!(r.index_entries(&[0]), before_0);
        assert_eq!(r.index_entries(&[1]), before_1);
        assert!(r.contains(&t));
    }

    #[test]
    fn clone_carries_indices() {
        let mut r = Relation::new(2);
        r.ensure_index(&[1]);
        r.insert(vec![Value::Int(1), Value::Int(2)]);
        let mut c = r.clone();
        assert!(c.has_index(&[1]));
        assert_eq!(c.probe(&[1], &[Value::Int(2)]).unwrap().len(), 1);
        c.insert(vec![Value::Int(3), Value::Int(2)]);
        assert_eq!(c.probe(&[1], &[Value::Int(2)]).unwrap().len(), 2);
        assert_eq!(r.probe(&[1], &[Value::Int(2)]).unwrap().len(), 1);
    }

    #[test]
    fn sorted_is_deterministic() {
        let mut r = Relation::new(1);
        r.insert(vec![Value::Int(3)]);
        r.insert(vec![Value::Int(1)]);
        r.insert(vec![Value::Int(2)]);
        assert_eq!(
            r.sorted(),
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(3)]
            ]
        );
    }

    #[test]
    fn snapshot_visibility_tracks_epochs() {
        let mut r = Relation::new(1);
        let t1 = vec![Value::Int(1)];
        let t2 = vec![Value::Int(2)];
        r.insert(t1.clone()); // born 1
        r.set_write_epoch(2); // "publish" epoch 1
        r.remove(&t1); // died 2
        r.insert(t2.clone()); // born 2
        // Head: only t2.
        assert!(!r.contains(&t1));
        assert!(r.contains(&t2));
        // Snapshot at epoch 1: only t1 (pre-publish cut).
        assert!(r.contains_at(&t1, 1));
        assert!(!r.contains_at(&t2, 1));
        assert_eq!(r.sorted_at(1), vec![t1.clone()]);
        // Snapshot at epoch 2: only t2.
        assert!(!r.contains_at(&t1, 2));
        assert!(r.contains_at(&t2, 2));
        // Epoch 0 predates everything.
        assert_eq!(r.len_at(0), 0);
    }

    #[test]
    fn vacuum_respects_watermark() {
        let mut r = Relation::new(1);
        let t = vec![Value::Int(7)];
        r.insert(t.clone()); // born 1
        r.set_write_epoch(2);
        r.remove(&t); // died 2
        assert_eq!(r.retained(), 1);
        // A snapshot pinned at epoch 1 can still see the row: a vacuum
        // at watermark 1 must keep it.
        assert_eq!(r.vacuum(1), 0);
        assert!(r.contains_at(&t, 1));
        // Once the minimum pin moves to 2, the row is invisible at every
        // reachable epoch and gets reclaimed.
        assert_eq!(r.vacuum(2), 1);
        assert_eq!(r.retained(), 0);
        assert!(!r.contains_at(&t, 1), "vacuumed row is gone everywhere");
        assert_eq!(r.free.len(), 1);
    }

    #[test]
    fn reinsert_after_tombstone_is_one_row_per_epoch() {
        let mut r = Relation::new(1);
        r.ensure_index(&[0]);
        let t = vec![Value::Int(5)];
        r.insert(t.clone()); // born 1
        r.set_write_epoch(2);
        r.remove(&t); // died 2
        r.insert(t.clone()); // born 2, new row
        assert_eq!(r.len(), 1);
        // Exactly one visible match at head and at each epoch, even
        // though the arena and index hold two rows for the tuple.
        assert_eq!(r.probe(&[0], &[Value::Int(5)]).unwrap().len(), 1);
        assert_eq!(r.probe_at(&[0], &[Value::Int(5)], 1).unwrap().len(), 1);
        assert_eq!(r.probe_at(&[0], &[Value::Int(5)], 2).unwrap().len(), 1);
        assert_eq!(r.index_entries(&[0]), Some(2));
        assert!(r.contains_at(&t, 1));
        assert!(r.contains_at(&t, 2));
    }

    #[test]
    fn database_publish_bumps_epoch_and_vacuums() {
        let mut db = Database::new();
        db.insert_fact("edge", &["a", "b"]); // born 1
        assert_eq!(db.epoch(), 0);
        assert!(!db.has_fact_at("edge", &["a", "b"], 0), "not yet published");
        assert_eq!(db.publish(u64::MAX), 1);
        assert!(db.has_fact_at("edge", &["a", "b"], 1));

        let id = db.pred_id("edge").unwrap();
        let t: Tuple = vec![
            Value::Sym(db.interner.get("a").unwrap()),
            Value::Sym(db.interner.get("b").unwrap()),
        ];
        db.rel_mut(id).remove(&t); // died 2
        assert!(db.has_fact_at("edge", &["a", "b"], 1), "pinned cut intact");
        // Publish with a reader still pinned at epoch 1: tombstone kept.
        assert_eq!(db.publish(1), 2);
        assert_eq!(db.rows_retained(), 1);
        assert!(db.has_fact_at("edge", &["a", "b"], 1));
        assert!(!db.has_fact_at("edge", &["a", "b"], 2));
        // Reader gone: next publish reclaims.
        db.publish(u64::MAX);
        assert_eq!(db.rows_retained(), 0);
        assert_eq!(db.total_facts(), 0);
    }
}
