//! Relation storage and the database of predicates.
//!
//! Tuples live once, in a row arena; membership lookup and every index
//! reference rows by dense id instead of cloning tuples. Secondary
//! indices are built on demand for whatever column sets the compiled
//! join plans need (see `eval::ensure_indices`) and are maintained
//! incrementally on insert/remove. Duplicate inserts and misses touch
//! only the membership chain — the tuple is hashed once and no index is
//! disturbed unless the extent actually changes.

use crate::value::{Interner, Tuple, Value};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// Dense predicate handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredId(pub u32);

impl PredId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Row handle inside one relation's arena.
type Row = u32;

/// Pass-through hasher for keys that already are hashes (the membership
/// chain map is keyed by the tuple's own 64-bit hash).
#[derive(Clone, Default)]
struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _: &[u8]) {
        unreachable!("identity hasher only takes u64 keys")
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// Deterministic tuple hash (fixed-key SipHash): row placement must not
/// depend on `RandomState`, so clones share chain layout with originals.
fn tuple_hash(t: &[Value]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

/// One secondary index: rows grouped by their projection onto `cols`.
#[derive(Clone, Debug, Default)]
struct SecondaryIndex {
    cols: Vec<usize>,
    buckets: HashMap<Vec<Value>, Vec<Row>>,
}

impl SecondaryIndex {
    fn key(&self, t: &[Value]) -> Vec<Value> {
        self.cols.iter().map(|&c| t[c]).collect()
    }

    fn insert(&mut self, t: &[Value], row: Row) {
        self.buckets.entry(self.key(t)).or_default().push(row);
    }

    fn remove(&mut self, t: &[Value], row: Row) {
        let key = self.key(t);
        if let Some(bucket) = self.buckets.get_mut(&key) {
            if let Some(pos) = bucket.iter().position(|&r| r == row) {
                bucket.swap_remove(pos);
            }
            if bucket.is_empty() {
                self.buckets.remove(&key);
            }
        }
    }
}

/// A set of tuples of fixed arity. The arena (`rows` + `free`) owns every
/// tuple; `lookup` chains row ids by tuple hash for O(1) membership; each
/// entry of `indices` groups row ids by a bound-column projection for
/// O(bucket) join probes.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    arity: usize,
    rows: Vec<Option<Tuple>>,
    free: Vec<Row>,
    live: usize,
    lookup: HashMap<u64, Vec<Row>, BuildHasherDefault<IdentityHasher>>,
    indices: HashMap<Vec<usize>, SecondaryIndex>,
}

/// A resolved index probe: the rows matching one key (possibly none).
pub struct Probe<'a> {
    rel: &'a Relation,
    bucket: &'a [Row],
}

impl<'a> Probe<'a> {
    pub fn len(&self) -> usize {
        self.bucket.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bucket.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &'a Tuple> + 'a {
        let rel = self.rel;
        self.bucket
            .iter()
            .map(move |&r| rel.rows[r as usize].as_ref().expect("indexed row is live"))
    }
}

impl Relation {
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            ..Relation::default()
        }
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    fn find_row(&self, t: &[Value]) -> Option<Row> {
        let chain = self.lookup.get(&tuple_hash(t))?;
        chain
            .iter()
            .copied()
            .find(|&r| self.rows[r as usize].as_deref() == Some(t))
    }

    /// Insert; true if new. Panics on arity mismatch (an engine bug, not
    /// a data error — arities are validated at parse time). Duplicates
    /// hash once and leave every index untouched.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(t.len(), self.arity, "arity mismatch on insert");
        let h = tuple_hash(&t);
        if let Some(chain) = self.lookup.get(&h) {
            if chain
                .iter()
                .any(|&r| self.rows[r as usize].as_deref() == Some(t.as_slice()))
            {
                return false;
            }
        }
        let row = match self.free.pop() {
            Some(r) => {
                self.rows[r as usize] = Some(t);
                r
            }
            None => {
                self.rows.push(Some(t));
                (self.rows.len() - 1) as Row
            }
        };
        let stored = self.rows[row as usize].as_deref().expect("just stored");
        for idx in self.indices.values_mut() {
            idx.insert(stored, row);
        }
        self.lookup.entry(h).or_default().push(row);
        self.live += 1;
        true
    }

    /// Remove; true if present. Misses hash once and leave every index
    /// untouched.
    pub fn remove(&mut self, t: &[Value]) -> bool {
        let h = tuple_hash(t);
        let Some(chain) = self.lookup.get_mut(&h) else {
            return false;
        };
        let Some(pos) = chain
            .iter()
            .position(|&r| self.rows[r as usize].as_deref() == Some(t))
        else {
            return false;
        };
        let row = chain.swap_remove(pos);
        if chain.is_empty() {
            self.lookup.remove(&h);
        }
        let tuple = self.rows[row as usize].take().expect("live row");
        for idx in self.indices.values_mut() {
            idx.remove(&tuple, row);
        }
        self.free.push(row);
        self.live -= 1;
        true
    }

    /// Build the secondary index over `cols` if absent; true if it was
    /// built now (callers meter index builds).
    pub fn ensure_index(&mut self, cols: &[usize]) -> bool {
        assert!(
            !cols.is_empty() && cols.iter().all(|&c| c < self.arity),
            "bad index columns {cols:?} for arity {}",
            self.arity
        );
        if self.indices.contains_key(cols) {
            return false;
        }
        let mut idx = SecondaryIndex {
            cols: cols.to_vec(),
            buckets: HashMap::new(),
        };
        for (r, slot) in self.rows.iter().enumerate() {
            if let Some(t) = slot {
                idx.insert(t, r as Row);
            }
        }
        self.indices.insert(cols.to_vec(), idx);
        true
    }

    pub fn has_index(&self, cols: &[usize]) -> bool {
        self.indices.contains_key(cols)
    }

    pub fn index_count(&self) -> usize {
        self.indices.len()
    }

    /// Total row references held by the index over `cols` (None when the
    /// index does not exist). Every live row appears exactly once.
    pub fn index_entries(&self, cols: &[usize]) -> Option<usize> {
        self.indices
            .get(cols)
            .map(|i| i.buckets.values().map(Vec::len).sum())
    }

    /// Probe the secondary index over `cols` with `key` (the values of
    /// those columns, in `cols` order). `None` when no such index exists —
    /// the caller falls back to a scan.
    pub fn probe(&self, cols: &[usize], key: &[Value]) -> Option<Probe<'_>> {
        let idx = self.indices.get(cols)?;
        let bucket = idx.buckets.get(key).map_or(&[][..], Vec::as_slice);
        Some(Probe { rel: self, bucket })
    }

    /// Tuples whose first column equals `v`.
    pub fn iter_first(&self, v: Value) -> impl Iterator<Item = &Tuple> + '_ {
        self.iter().filter(move |t| t.first() == Some(&v))
    }

    pub fn contains(&self, t: &[Value]) -> bool {
        self.find_row(t).is_some()
    }

    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.rows.iter().filter_map(Option::as_ref)
    }

    /// Tuples in sorted order (deterministic output for tests/display).
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.iter().cloned().collect();
        v.sort();
        v
    }
}

impl FromIterator<Tuple> for Relation {
    fn from_iter<T: IntoIterator<Item = Tuple>>(iter: T) -> Self {
        let staged: Vec<Tuple> = iter.into_iter().collect();
        let arity = staged.first().map_or(0, Vec::len);
        let mut rel = Relation::new(arity);
        for t in staged {
            assert_eq!(t.len(), arity, "mixed arities in relation literal");
            rel.insert(t);
        }
        rel
    }
}

/// All predicates and their extents, plus the symbol interner.
#[derive(Clone, Debug, Default)]
pub struct Database {
    pub interner: Interner,
    ids: HashMap<String, PredId>,
    names: Vec<String>,
    rels: Vec<Relation>,
}

impl Database {
    pub fn new() -> Self {
        Database::default()
    }

    /// Register (or fetch) a predicate with the given arity.
    pub fn pred(&mut self, name: &str, arity: usize) -> PredId {
        if let Some(&id) = self.ids.get(name) {
            assert_eq!(
                self.rels[id.index()].arity(),
                arity,
                "predicate {name} arity mismatch"
            );
            return id;
        }
        let id = PredId(self.names.len() as u32);
        self.ids.insert(name.to_string(), id);
        self.names.push(name.to_string());
        self.rels.push(Relation::new(arity));
        id
    }

    /// Fetch a registered predicate id.
    pub fn pred_id(&self, name: &str) -> Option<PredId> {
        self.ids.get(name).copied()
    }

    pub fn pred_name(&self, id: PredId) -> &str {
        &self.names[id.index()]
    }

    pub fn pred_count(&self) -> usize {
        self.names.len()
    }

    pub fn rel(&self, id: PredId) -> &Relation {
        &self.rels[id.index()]
    }

    pub fn rel_mut(&mut self, id: PredId) -> &mut Relation {
        &mut self.rels[id.index()]
    }

    /// Intern a symbolic constant.
    pub fn sym(&mut self, s: &str) -> Value {
        Value::Sym(self.interner.intern(s))
    }

    /// Convenience: insert a fact given symbol texts.
    pub fn insert_fact(&mut self, pred: &str, args: &[&str]) -> bool {
        let tuple: Tuple = args.iter().map(|a| self.sym(a)).collect();
        let id = self.pred(pred, args.len());
        self.rels[id.index()].insert(tuple)
    }

    /// Convenience: check a fact given symbol texts (false if any symbol
    /// or the predicate is unknown).
    pub fn has_fact(&self, pred: &str, args: &[&str]) -> bool {
        let Some(id) = self.pred_id(pred) else {
            return false;
        };
        let mut tuple = Tuple::with_capacity(args.len());
        for a in args {
            match self.interner.get(a) {
                Some(s) => tuple.push(Value::Sym(s)),
                None => return false,
            }
        }
        self.rel(id).contains(&tuple)
    }

    /// Total tuples across all predicates.
    pub fn total_facts(&self) -> usize {
        self.rels.iter().map(Relation::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_set_semantics() {
        let mut r = Relation::new(2);
        let t = vec![Value::Int(1), Value::Int(2)];
        assert!(r.insert(t.clone()));
        assert!(!r.insert(t.clone()));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&t));
        assert!(r.remove(&t));
        assert!(!r.remove(&t));
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked_on_insert() {
        let mut r = Relation::new(2);
        r.insert(vec![Value::Int(1)]);
    }

    #[test]
    fn database_registers_and_reuses_preds() {
        let mut db = Database::new();
        let p1 = db.pred("edge", 2);
        let p2 = db.pred("edge", 2);
        assert_eq!(p1, p2);
        assert_eq!(db.pred_name(p1), "edge");
        assert_eq!(db.pred_count(), 1);
    }

    #[test]
    fn fact_roundtrip() {
        let mut db = Database::new();
        assert!(db.insert_fact("edge", &["a", "b"]));
        assert!(!db.insert_fact("edge", &["a", "b"]));
        assert!(db.has_fact("edge", &["a", "b"]));
        assert!(!db.has_fact("edge", &["b", "a"]));
        assert!(!db.has_fact("nope", &["a"]));
        assert!(!db.has_fact("edge", &["a", "unseen"]));
        assert_eq!(db.total_facts(), 1);
    }

    #[test]
    fn first_column_index_tracks_mutations() {
        let mut r = Relation::new(2);
        let a = Value::Int(1);
        r.insert(vec![a, Value::Int(10)]);
        r.insert(vec![a, Value::Int(11)]);
        r.insert(vec![Value::Int(2), Value::Int(20)]);
        assert_eq!(r.iter_first(a).count(), 2);
        assert_eq!(r.iter_first(Value::Int(2)).count(), 1);
        assert_eq!(r.iter_first(Value::Int(9)).count(), 0);
        assert!(r.remove(&[a, Value::Int(10)]));
        assert_eq!(r.iter_first(a).count(), 1);
        assert!(r.remove(&[a, Value::Int(11)]));
        assert_eq!(r.iter_first(a).count(), 0);
    }

    #[test]
    fn secondary_index_probes_any_column_set() {
        let mut r = Relation::new(3);
        for (a, b, c) in [(1, 10, 100), (1, 11, 100), (2, 10, 200), (2, 10, 100)] {
            r.insert(vec![Value::Int(a), Value::Int(b), Value::Int(c)]);
        }
        assert!(r.probe(&[1, 2], &[Value::Int(10), Value::Int(100)]).is_none());
        assert!(r.ensure_index(&[1, 2]));
        assert!(!r.ensure_index(&[1, 2]), "second ensure is a no-op");
        let p = r.probe(&[1, 2], &[Value::Int(10), Value::Int(100)]).unwrap();
        assert_eq!(p.len(), 2, "(1,10,100) and (2,10,100)");
        let mut seen: Vec<Tuple> = p.iter().cloned().collect();
        seen.sort();
        assert_eq!(seen[0][0], Value::Int(1));
        assert_eq!(seen[1][0], Value::Int(2));
        let empty = r.probe(&[1, 2], &[Value::Int(99), Value::Int(1)]).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn secondary_index_maintained_on_mutation() {
        let mut r = Relation::new(2);
        r.ensure_index(&[1]);
        r.insert(vec![Value::Int(1), Value::Int(7)]);
        r.insert(vec![Value::Int(2), Value::Int(7)]);
        assert_eq!(r.probe(&[1], &[Value::Int(7)]).unwrap().len(), 2);
        assert!(r.remove(&[Value::Int(1), Value::Int(7)]));
        assert_eq!(r.probe(&[1], &[Value::Int(7)]).unwrap().len(), 1);
        // Arena slot reuse keeps indices consistent.
        r.insert(vec![Value::Int(3), Value::Int(8)]);
        assert_eq!(r.probe(&[1], &[Value::Int(8)]).unwrap().len(), 1);
        assert_eq!(r.index_entries(&[1]), Some(2));
    }

    #[test]
    fn duplicate_insert_and_missing_remove_leave_indices_untouched() {
        // The single-hash guarantee: a duplicate insert (or a miss remove)
        // must not disturb any index bucket — the extent is consulted
        // first and indices are only touched on actual change.
        let mut r = Relation::new(2);
        r.ensure_index(&[0]);
        r.ensure_index(&[1]);
        let t = vec![Value::Int(4), Value::Int(5)];
        assert!(r.insert(t.clone()));
        let before_0 = r.index_entries(&[0]);
        let before_1 = r.index_entries(&[1]);
        assert!(!r.insert(t.clone()), "duplicate insert");
        assert_eq!(r.index_entries(&[0]), before_0);
        assert_eq!(r.index_entries(&[1]), before_1);
        assert_eq!(r.len(), 1);
        assert!(!r.remove(&[Value::Int(9), Value::Int(9)]), "missing remove");
        assert_eq!(r.index_entries(&[0]), before_0);
        assert_eq!(r.index_entries(&[1]), before_1);
        assert!(r.contains(&t));
    }

    #[test]
    fn clone_carries_indices() {
        let mut r = Relation::new(2);
        r.ensure_index(&[1]);
        r.insert(vec![Value::Int(1), Value::Int(2)]);
        let mut c = r.clone();
        assert!(c.has_index(&[1]));
        assert_eq!(c.probe(&[1], &[Value::Int(2)]).unwrap().len(), 1);
        c.insert(vec![Value::Int(3), Value::Int(2)]);
        assert_eq!(c.probe(&[1], &[Value::Int(2)]).unwrap().len(), 2);
        assert_eq!(r.probe(&[1], &[Value::Int(2)]).unwrap().len(), 1);
    }

    #[test]
    fn sorted_is_deterministic() {
        let mut r = Relation::new(1);
        r.insert(vec![Value::Int(3)]);
        r.insert(vec![Value::Int(1)]);
        r.insert(vec![Value::Int(2)]);
        assert_eq!(
            r.sorted(),
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(3)]
            ]
        );
    }
}
