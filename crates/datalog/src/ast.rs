//! Abstract syntax of Datalog programs.
//!
//! Conventional syntax: `path(X, Z) :- path(X, Y), edge(Y, Z).` — variables
//! start uppercase, symbols lowercase, integers are literals, and `!`
//! negates a body literal (stratified negation only, enforced by
//! [`crate::stratify`]).

use std::collections::BTreeSet;
use std::fmt;

/// Aggregate operator (head-only; see [`Term::Agg`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggOp {
    /// Distinct bindings of the aggregated variable per group.
    Count,
    /// Sum of integer bindings.
    Sum,
    /// Minimum integer binding.
    Min,
    /// Maximum integer binding.
    Max,
}

impl AggOp {
    pub fn name(self) -> &'static str {
        match self {
            AggOp::Count => "count",
            AggOp::Sum => "sum",
            AggOp::Min => "min",
            AggOp::Max => "max",
        }
    }

    /// Parse an operator name.
    pub fn from_name(s: &str) -> Option<AggOp> {
        Some(match s {
            "count" => AggOp::Count,
            "sum" => AggOp::Sum,
            "min" => AggOp::Min,
            "max" => AggOp::Max,
            _ => return None,
        })
    }
}

/// A term in an atom.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Term {
    /// Variable (uppercase-initial identifier).
    Var(String),
    /// Integer constant.
    Int(i64),
    /// Symbolic constant (lowercase identifier or quoted string).
    Sym(String),
    /// Head-only aggregate over a body variable, e.g.
    /// `revenue(C, sum(P)) :- sale(X, C), price(X, P).`
    /// The remaining head variables form the group key; evaluation
    /// aggregates over the *distinct* bindings of (group key, variable).
    Agg(AggOp, String),
}

impl Term {
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    pub fn is_agg(&self) -> bool {
        matches!(self, Term::Agg(..))
    }
}

/// A predicate applied to terms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Atom {
    pub pred: String,
    pub terms: Vec<Term>,
}

impl Atom {
    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Variables appearing in the atom, in order of first occurrence
    /// (aggregated variables included: they must be body-bound too).
    pub fn vars(&self) -> Vec<&str> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) | Term::Agg(_, v) = t {
                if seen.insert(v.as_str()) {
                    out.push(v.as_str());
                }
            }
        }
        out
    }

    /// The aggregate term's (position, op, variable), if any.
    pub fn agg(&self) -> Option<(usize, AggOp, &str)> {
        self.terms.iter().enumerate().find_map(|(i, t)| match t {
            Term::Agg(op, v) => Some((i, *op, v.as_str())),
            _ => None,
        })
    }
}

/// A possibly negated body atom.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Literal {
    pub atom: Atom,
    pub negated: bool,
}

/// `head :- body.` — a body-less rule is a fact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    pub head: Atom,
    pub body: Vec<Literal>,
}

impl Rule {
    /// True for ground facts (`p(a, b).`).
    pub fn is_fact(&self) -> bool {
        self.body.is_empty() && self.head.vars().is_empty()
    }

    /// Range restriction (safety): every head variable and every variable
    /// of a negated literal must occur in some positive body literal.
    /// Aggregates may appear only in the head, at most once per rule.
    pub fn check_safety(&self) -> Result<(), String> {
        for l in &self.body {
            if l.atom.terms.iter().any(Term::is_agg) {
                return Err(format!(
                    "aggregate in rule body of {} (aggregates are head-only)",
                    self.head.pred
                ));
            }
        }
        if self.head.terms.iter().filter(|t| t.is_agg()).count() > 1 {
            return Err(format!(
                "multiple aggregates in the head of {} (at most one supported)",
                self.head.pred
            ));
        }
        let positive: BTreeSet<&str> = self
            .body
            .iter()
            .filter(|l| !l.negated)
            .flat_map(|l| l.atom.vars())
            .collect();
        for v in self.head.vars() {
            if !positive.contains(v) {
                return Err(format!(
                    "unsafe rule for {}: head variable {v} not bound by a positive body literal",
                    self.head.pred
                ));
            }
        }
        for l in self.body.iter().filter(|l| l.negated) {
            for v in l.atom.vars() {
                if !positive.contains(v) {
                    return Err(format!(
                        "unsafe rule for {}: negated variable {v} not bound positively",
                        self.head.pred
                    ));
                }
            }
        }
        Ok(())
    }
}

/// A whole program: rules (including facts).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    pub rules: Vec<Rule>,
}

impl Program {
    /// All predicates with at least one rule having a non-empty body or a
    /// variable head — i.e. *derived* (IDB) predicates; the rest are base
    /// (EDB) predicates.
    pub fn derived_predicates(&self) -> BTreeSet<&str> {
        self.rules
            .iter()
            .filter(|r| !r.is_fact())
            .map(|r| r.head.pred.as_str())
            .collect()
    }

    /// Every predicate name mentioned anywhere, with its arity; errors on
    /// inconsistent arities.
    pub fn predicate_arities(&self) -> Result<Vec<(String, usize)>, String> {
        let mut arities: Vec<(String, usize)> = Vec::new();
        let mut check = |atom: &Atom| -> Result<(), String> {
            match arities.iter().find(|(p, _)| p == &atom.pred) {
                Some((_, a)) if *a != atom.arity() => Err(format!(
                    "predicate {} used with arities {} and {}",
                    atom.pred,
                    a,
                    atom.arity()
                )),
                Some(_) => Ok(()),
                None => {
                    arities.push((atom.pred.clone(), atom.arity()));
                    Ok(())
                }
            }
        };
        for r in &self.rules {
            check(&r.head)?;
            for l in &r.body {
                check(&l.atom)?;
            }
        }
        Ok(arities)
    }

    /// Safety check over all rules.
    pub fn check_safety(&self) -> Result<(), String> {
        for r in &self.rules {
            r.check_safety()?;
        }
        Ok(())
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Int(i) => write!(f, "{i}"),
            Term::Sym(s) => write!(f, "{s}"),
            Term::Agg(op, v) => write!(f, "{}({v})", op.name()),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                if l.negated {
                    write!(f, "!")?;
                }
                write!(f, "{}", l.atom)?;
            }
        }
        write!(f, ".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(pred: &str, terms: Vec<Term>) -> Atom {
        Atom {
            pred: pred.into(),
            terms,
        }
    }

    #[test]
    fn vars_in_first_occurrence_order() {
        let a = atom(
            "p",
            vec![
                Term::Var("X".into()),
                Term::Var("Y".into()),
                Term::Var("X".into()),
            ],
        );
        assert_eq!(a.vars(), vec!["X", "Y"]);
    }

    #[test]
    fn fact_detection() {
        let f = Rule {
            head: atom("p", vec![Term::Sym("a".into())]),
            body: vec![],
        };
        assert!(f.is_fact());
        let r = Rule {
            head: atom("p", vec![Term::Var("X".into())]),
            body: vec![],
        };
        assert!(!r.is_fact(), "variable head is not a ground fact");
    }

    #[test]
    fn unsafe_head_variable_rejected() {
        let r = Rule {
            head: atom("p", vec![Term::Var("X".into())]),
            body: vec![Literal {
                atom: atom("q", vec![Term::Var("Y".into())]),
                negated: false,
            }],
        };
        assert!(r.check_safety().is_err());
    }

    #[test]
    fn unsafe_negated_variable_rejected() {
        let r = Rule {
            head: atom("p", vec![Term::Var("X".into())]),
            body: vec![
                Literal {
                    atom: atom("q", vec![Term::Var("X".into())]),
                    negated: false,
                },
                Literal {
                    atom: atom("r", vec![Term::Var("Z".into())]),
                    negated: true,
                },
            ],
        };
        assert!(r.check_safety().is_err());
    }

    #[test]
    fn arity_conflict_detected() {
        let p = Program {
            rules: vec![
                Rule {
                    head: atom("p", vec![Term::Int(1)]),
                    body: vec![],
                },
                Rule {
                    head: atom("p", vec![Term::Int(1), Term::Int(2)]),
                    body: vec![],
                },
            ],
        };
        assert!(p.predicate_arities().is_err());
    }

    #[test]
    fn display_roundtrips_shape() {
        let r = Rule {
            head: atom("p", vec![Term::Var("X".into())]),
            body: vec![
                Literal {
                    atom: atom("q", vec![Term::Var("X".into()), Term::Int(3)]),
                    negated: false,
                },
                Literal {
                    atom: atom("r", vec![Term::Var("X".into())]),
                    negated: true,
                },
            ],
        };
        assert_eq!(r.to_string(), "p(X) :- q(X, 3), !r(X).");
    }
}
