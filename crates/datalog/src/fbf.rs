//! Counting-based backward/forward (FBF) maintenance: the
//! deletion-heavy alternative to DRed.
//!
//! DRed ([`crate::incr`]) treats every deletion pessimistically: it
//! overdeletes everything a removed tuple *might* have supported, then
//! rederives the survivors. On deletion-heavy streams most overdeleted
//! tuples come straight back, and DRed additionally clones the clique's
//! entire extent (`old_scc`) on every update just to diff it. FBF keeps
//! a per-tuple **derivation count** in the row arena instead
//! ([`crate::rel::Relation::support`]) so most deletions resolve to a
//! counter decrement with no propagation at all.
//!
//! ## Count semantics
//!
//! `support(t)` tracks derivations of `t` through the clique's
//! **non-recursive** rules only — rules with no body atom inside the
//! clique. Those counts are exact under a counting algebra because every
//! complete variable binding of a safe rule is one derivation
//! ([`rule_derivation_count`] enumerates them). Recursive rules are never
//! counted: cyclic support makes counting unsound there, so recursive
//! SCCs fall back to a DRed-style delete/rederive pass *restricted to
//! the recursive rules* (the forward phase below).
//!
//! The stored count obeys the invariant the update relies on:
//!
//! > `stored(t) = 0` iff `t` has no non-recursive derivation; otherwise
//! > `1 <= stored(t) <= true_count(t)`.
//!
//! Undercounts *above zero* are harmless (they only force an extra
//! exact recount); overcounts would wrongly skip deletions, so
//! membership transitions are only ever decided from an exact recount,
//! and the decrement fast path never crosses zero. The zero side is
//! load-bearing: a deleted candidate with a stored zero is rederived
//! through the recursive rules *only*, so a tuple whose non-recursive
//! support was never counted would be lost. [`init_counts_scc`] must
//! therefore run before the first FBF update — the engine does so at
//! materialization, on strategy switch, and after a rollback (counts
//! are a pure function of extents and rules, so recovery is a recount,
//! not a replay).
//!
//! ## One update
//!
//! 1. **Count** — pin the input deltas into the non-recursive rules
//!    twice: once against the *old* view with multiset semantics
//!    ([`eval_pin_jobs_counted`]) to get `D(t)`, an overestimate of the
//!    derivations each head tuple lost (a derivation using two changed
//!    inputs is counted twice — safely high), and once against the new
//!    state with set semantics to get `A`, the tuples that may have
//!    gained derivations. A tuple with `t ∉ A` and `stored − D(t) > 0`
//!    is decremented and **saved**: no backward check, no propagation,
//!    no extent touch (`datalog.fbf.count_saved_deletes`).
//! 2. **Backward** — everything else is recounted exactly
//!    (`datalog.fbf.backward_checks`); transitions to zero become
//!    deletion candidates, absent tuples with new support become
//!    insertions.
//! 3. **Forward** (recursive SCCs only) — count-zeroed tuples plus heads
//!    of destroyed recursive derivations seed a cascade over the
//!    recursive rules; candidates whose count is still positive are
//!    saved without cascading. Deleted candidates are rederived through
//!    recursive rules only (their non-recursive count is exactly zero),
//!    and insertions propagate semi-naively
//!    (`datalog.fbf.forward_rederive_ns`).
//!
//! Non-recursive cliques skip phase 3 *and* the `old_scc` extent clone
//! entirely — the dominant saving at high delete ratios.
//!
//! Counts ride the MVCC row arena: they are head-state metadata stamped
//! on live rows, invisible to snapshot readers, and a re-insert after a
//! tombstone allocates a fresh row whose count starts at zero (support
//! is re-established by whichever phase inserts it). Under sharding,
//! mirrors are base predicates and counts live only on derived
//! predicates, so each shard maintains its counts locally from the
//! exchanged deltas; rollback restores them by recounting.

use crate::eval::{
    ensure_indices, rule_derivation_count, rule_derives, seminaive_scc_opts, CRule, PinMode,
    Rels,
};
use crate::incr::{net_deltas, sorted_list, Delta, OldView, ScopeCounter};
use crate::par::{collect_jobs, eval_pin_jobs, eval_pin_jobs_counted, EvalOptions, PinJob};
use crate::rel::{Database, PredId, Relation};
use crate::value::Tuple;
use incr_obs::flight::{self, FlightCode};
use incr_obs::trace;
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Which incremental maintenance backend non-aggregate cliques run under.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MaintenanceStrategy {
    /// Classic delete/rederive: overdelete, rederive, insert.
    #[default]
    DRed,
    /// Counting-based backward/forward: per-tuple derivation counts with
    /// a recursive-SCC fallback.
    Fbf,
}

impl MaintenanceStrategy {
    /// Parse a CLI/config spelling (`dred`, `fbf`, `counting`).
    pub fn parse(s: &str) -> Option<MaintenanceStrategy> {
        match s.to_ascii_lowercase().as_str() {
            "dred" => Some(MaintenanceStrategy::DRed),
            "fbf" | "counting" => Some(MaintenanceStrategy::Fbf),
            _ => None,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            MaintenanceStrategy::DRed => "dred",
            MaintenanceStrategy::Fbf => "fbf",
        }
    }
}

impl std::fmt::Display for MaintenanceStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Counts saturate at the column width; a saturated count only ever
/// *undercounts*, which the invariant tolerates.
fn sat(n: u64) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// A rule is recursive iff any body atom (positive or negated) reads a
/// clique predicate. Stratification rejects negation within a clique, so
/// in practice only positive atoms qualify; checking both is free.
fn is_recursive(rule: &CRule, scc: &HashSet<PredId>) -> bool {
    rule.body.iter().any(|(a, _)| scc.contains(&a.pred))
}

/// Pin jobs for one rule set over the given input delta lists.
/// `destruction` selects the lost-derivation pins (removed positives,
/// added blockers) evaluated against the old view; otherwise the
/// gained-derivation pins (added positives, removed blockers) against
/// the new state.
fn input_pin_jobs<'a>(
    rules: &[&'a CRule],
    input_lists: &'a HashMap<PredId, (Vec<Tuple>, Vec<Tuple>)>,
    opts: &EvalOptions,
    destruction: bool,
) -> Vec<PinJob<'a>> {
    let mut jobs: Vec<PinJob<'a>> = Vec::new();
    for &rule in rules {
        for (j, (atom, negated)) in rule.body.iter().enumerate() {
            let Some((added, removed)) = input_lists.get(&atom.pred) else {
                continue;
            };
            let (mode, list) = match (destruction, *negated) {
                (true, false) => (PinMode::Positive, removed),
                (true, true) => (PinMode::NegLost, added),
                (false, false) => (PinMode::Positive, added),
                (false, true) => (PinMode::NegGained, removed),
            };
            for chunk in opts.chunks(list) {
                jobs.push(PinJob {
                    rule,
                    pos: j,
                    mode,
                    chunk,
                });
            }
        }
    }
    jobs
}

/// Apply an update to one non-aggregate clique under counting/FBF
/// maintenance. Same contract as [`crate::incr::update_scc_opts`]: the
/// input deltas are final and already applied to `db`; the return value
/// is the clique's net output delta per predicate.
pub fn update_scc_fbf(
    db: &mut Database,
    rules: &[CRule],
    scc_preds: &[PredId],
    input: &HashMap<PredId, Delta>,
    opts: &EvalOptions,
) -> HashMap<PredId, Delta> {
    debug_assert!(
        rules.iter().all(|r| r.agg.is_none()),
        "aggregate cliques are re-evaluated wholesale, never counted"
    );
    ensure_indices(db, rules, true);

    let scc_set: HashSet<PredId> = scc_preds.iter().copied().collect();
    let nonrec: Vec<&CRule> = rules.iter().filter(|r| !is_recursive(r, &scc_set)).collect();
    let rec: Vec<&CRule> = rules.iter().filter(|r| is_recursive(r, &scc_set)).collect();

    // Old extents of the *inputs* only — unlike DRed, the clique's own
    // extents are cloned only on the recursive path.
    let mut old: HashMap<PredId, Relation> = HashMap::new();
    for (&p, d) in input {
        if d.is_empty() {
            continue;
        }
        let mut r = db.rel(p).clone();
        for t in &d.added {
            r.remove(t);
        }
        for t in &d.removed {
            r.insert(t.clone());
        }
        old.insert(p, r);
    }
    let input_lists: HashMap<PredId, (Vec<Tuple>, Vec<Tuple>)> = input
        .iter()
        .filter(|(_, d)| !d.is_empty())
        .map(|(&p, d)| (p, (sorted_list(&d.added), sorted_list(&d.removed))))
        .collect();

    let mut saved: u64 = 0;
    let mut backward: u64 = 0;

    // ---- Phase 1: count deltas for the non-recursive rules. ----
    let count_span = trace::span("datalog", "fbf.count");
    let mut count_f = flight::span(FlightCode::FbfCount);

    // D(t): multiset of destroyed derivations, evaluated over the old
    // view. Every emission is a genuinely destroyed derivation; one
    // using several changed inputs is counted once per pinned position —
    // a safe overestimate.
    let destroyed: Vec<(PredId, Tuple, u64)> = {
        let view = OldView { db, old: &old };
        let jobs = input_pin_jobs(&nonrec, &input_lists, opts, true);
        eval_pin_jobs_counted(
            &view,
            &jobs,
            |head, t| view.relation(head).contains(t),
            opts,
            "par.fbf.destroyed",
        )
    };

    // A: tuples with at least one freshly created non-recursive
    // derivation (set semantics against the new state). Any derivation
    // that exists now but not before uses a changed input somewhere, so
    // pinning the deltas finds it.
    let created: Vec<(PredId, Tuple)> = {
        let dbr: &Database = db;
        let jobs = input_pin_jobs(&nonrec, &input_lists, opts, false);
        eval_pin_jobs(dbr, &jobs, |_, _| true, opts, "par.fbf.created")
    };
    let mut created_by: HashMap<PredId, HashSet<Tuple>> = HashMap::new();
    for (p, t) in &created {
        created_by.entry(*p).or_default().insert(t.clone());
    }

    // Decrement where the count proves survival; queue the rest for an
    // exact recount. Tuples in A always recount (their count may have
    // gone up, down, or both).
    let mut recount: Vec<(PredId, Tuple)> = Vec::new();
    for (p, t, d) in destroyed {
        if created_by.get(&p).is_some_and(|s| s.contains(&t)) {
            continue; // queued below via `created`
        }
        let s = u64::from(db.rel(p).support(&t));
        if s > d {
            db.rel_mut(p).set_support(&t, sat(s - d));
            saved += 1;
        } else {
            recount.push((p, t));
        }
    }
    recount.extend(created);
    recount.sort_unstable();
    recount.dedup();
    count_f.set_arg(saved);
    drop(count_f);
    count_span.end_args(vec![("saved", saved.into())]);

    // ---- Phase 2: backward — exact recounts for the undecided. ----
    let backward_span = trace::span("datalog", "fbf.backward");
    let mut backward_f = flight::span(FlightCode::FbfBackward);
    let mut heads_nonrec: HashMap<PredId, Vec<&CRule>> = HashMap::new();
    for &r in &nonrec {
        heads_nonrec.entry(r.head.pred).or_default().push(r);
    }
    backward += recount.len() as u64;
    let counted: Vec<(PredId, Tuple, u64)> = {
        let mut by_pred: HashMap<PredId, Vec<Tuple>> = HashMap::new();
        for (p, t) in recount {
            by_pred.entry(p).or_default().push(t); // stays sorted per pred
        }
        let cand_lists: Vec<(PredId, Vec<Tuple>)> = by_pred.into_iter().collect();
        let total: usize = cand_lists.iter().map(|(_, v)| v.len()).sum();
        let mut jobs: Vec<(PredId, &[Tuple])> = Vec::new();
        for (p, list) in &cand_lists {
            for chunk in opts.chunks(list) {
                jobs.push((*p, chunk));
            }
        }
        let dbr: &Database = db;
        collect_jobs(
            opts,
            total,
            jobs.len(),
            |i, out: &mut Vec<(PredId, Tuple, u64)>| {
                let (p, chunk) = jobs[i];
                let rs = heads_nonrec.get(&p);
                for t in chunk {
                    let c: u64 = rs.map_or(0, |rs| {
                        rs.iter().map(|&r| rule_derivation_count(dbr, r, t)).sum()
                    });
                    out.push((p, t.clone(), c));
                }
            },
            "par.fbf.recount",
        )
    };

    // Apply the exact counts: present tuples hitting zero become
    // deletion candidates; absent tuples gaining support become
    // insertions (with their exact count attached).
    let mut zeroed: Vec<(PredId, Tuple)> = Vec::new();
    let mut gained: Vec<(PredId, Tuple, u64)> = Vec::new();
    for (p, t, c) in counted {
        let present = db.rel(p).contains(&t);
        if c > 0 {
            if present {
                db.rel_mut(p).set_support(&t, sat(c));
            } else {
                gained.push((p, t, c));
            }
        } else if present {
            db.rel_mut(p).set_support(&t, 0);
            zeroed.push((p, t));
        }
    }
    backward_f.set_arg(backward);
    drop(backward_f);
    backward_span.end_args(vec![("checks", backward.into())]);

    // ---- Non-recursive clique: counts decide membership outright. ----
    // No extent clone, no cascade, no rederive — the net delta is read
    // straight off the zero transitions.
    if rec.is_empty() {
        let mut out: HashMap<PredId, Delta> =
            scc_preds.iter().map(|&p| (p, Delta::default())).collect();
        for (p, t) in zeroed {
            db.rel_mut(p).remove(&t);
            out.entry(p).or_default().removed.insert(t);
        }
        for (p, t, c) in gained {
            if db.rel_mut(p).insert(t.clone()) {
                db.rel_mut(p).set_support(&t, sat(c));
                out.entry(p).or_default().added.insert(t);
            }
        }
        emit_counters(saved, backward);
        return out;
    }

    // ---- Recursive clique: DRed-style pass over the recursive rules. ----
    // The extent clone is needed here (cascade keep checks + net diff),
    // but it is scoped to recursive cliques only.
    let old_scc: HashMap<PredId, Relation> = scc_preds
        .iter()
        .map(|&p| (p, db.rel(p).clone()))
        .collect();

    // Backward cascade: candidates are count-zeroed tuples plus heads of
    // destroyed recursive derivations; a candidate whose count is still
    // positive has a surviving non-recursive derivation and is saved
    // without entering the cascade at all.
    let mut deleted: HashMap<PredId, HashSet<Tuple>> =
        scc_preds.iter().map(|&p| (p, HashSet::new())).collect();
    {
        let view = OldView { db, old: &old };
        let jobs = input_pin_jobs(&rec, &input_lists, opts, true);
        let mut fresh = eval_pin_jobs(
            &view,
            &jobs,
            |head, t| old_scc[&head].contains(t),
            opts,
            "par.fbf.overdelete",
        );
        fresh.extend(zeroed);
        loop {
            let mut round: HashMap<PredId, Vec<Tuple>> = HashMap::new();
            for (p, t) in fresh {
                if view.db.rel(p).support(&t) > 0 {
                    saved += 1;
                    continue;
                }
                if let Some(set) = deleted.get_mut(&p) {
                    if set.insert(t.clone()) {
                        round.entry(p).or_default().push(t);
                    }
                }
            }
            if round.is_empty() {
                break;
            }
            for list in round.values_mut() {
                list.sort_unstable();
            }
            let mut jobs: Vec<PinJob<'_>> = Vec::new();
            for &rule in &rec {
                for (j, (atom, negated)) in rule.body.iter().enumerate() {
                    if *negated {
                        continue;
                    }
                    let Some(list) = round.get(&atom.pred) else {
                        continue;
                    };
                    for chunk in opts.chunks(list) {
                        jobs.push(PinJob {
                            rule,
                            pos: j,
                            mode: PinMode::Positive,
                            chunk,
                        });
                    }
                }
            }
            if jobs.is_empty() {
                break;
            }
            fresh = eval_pin_jobs(
                &view,
                &jobs,
                |head, t| old_scc[&head].contains(t) && !deleted[&head].contains(t),
                opts,
                "par.fbf.overdelete",
            );
        }
    }
    for (&p, ts) in &deleted {
        for t in ts {
            db.rel_mut(p).remove(t);
        }
    }

    // Forward: rederive deleted candidates through the recursive rules
    // only (their non-recursive count is exactly zero, so non-recursive
    // rules cannot bring them back), then propagate insertions.
    let forward_span = trace::span("datalog", "fbf.forward");
    let mut forward_f = flight::span(FlightCode::FbfForward);
    let _forward_timer = ScopeCounter {
        counter: "datalog.fbf.forward_rederive_ns",
        t0: Instant::now(),
    };
    let mut seed: HashMap<PredId, HashSet<Tuple>> = HashMap::new();
    let mut heads_rec: HashMap<PredId, Vec<&CRule>> = HashMap::new();
    for &r in &rec {
        heads_rec.entry(r.head.pred).or_default().push(r);
    }
    loop {
        let cand_lists: Vec<(PredId, Vec<Tuple>)> = deleted
            .iter()
            .filter(|(p, _)| heads_rec.contains_key(p))
            .map(|(&p, ts)| {
                let mut v: Vec<Tuple> = ts
                    .iter()
                    .filter(|t| !db.rel(p).contains(t))
                    .cloned()
                    .collect();
                v.sort_unstable();
                (p, v)
            })
            .filter(|(_, v)| !v.is_empty())
            .collect();
        let total: usize = cand_lists.iter().map(|(_, v)| v.len()).sum();
        if total == 0 {
            break;
        }
        backward += total as u64;
        let mut jobs: Vec<(PredId, &[Tuple])> = Vec::new();
        for (p, list) in &cand_lists {
            for chunk in opts.chunks(list) {
                jobs.push((*p, chunk));
            }
        }
        let dbr: &Database = db;
        let fresh: Vec<(PredId, Tuple)> = collect_jobs(
            opts,
            total,
            jobs.len(),
            |i, out: &mut Vec<(PredId, Tuple)>| {
                let (p, chunk) = jobs[i];
                if let Some(rs) = heads_rec.get(&p) {
                    for t in chunk {
                        if rs.iter().any(|&r| rule_derives(dbr, r, t)) {
                            out.push((p, t.clone()));
                        }
                    }
                }
            },
            "par.fbf.rederive",
        );
        if fresh.is_empty() {
            break;
        }
        for (p, t) in fresh {
            if db.rel_mut(p).insert(t.clone()) {
                seed.entry(p).or_default().insert(t);
            }
        }
    }

    // Insertions: count-gained tuples (exact support attached) plus
    // derivations newly enabled through the recursive rules.
    for (p, t, c) in gained {
        if db.rel_mut(p).insert(t.clone()) {
            db.rel_mut(p).set_support(&t, sat(c));
            seed.entry(p).or_default().insert(t);
        }
    }
    {
        let dbr: &Database = db;
        let jobs = input_pin_jobs(&rec, &input_lists, opts, false);
        let fresh = eval_pin_jobs(
            dbr,
            &jobs,
            |head, t| !dbr.rel(head).contains(t),
            opts,
            "par.fbf.insert",
        );
        for (p, t) in fresh {
            if db.rel_mut(p).insert(t.clone()) {
                seed.entry(p).or_default().insert(t);
            }
        }
    }
    let seed_inserts: usize = seed.values().map(|s| s.len()).sum();
    if !seed.is_empty() {
        // Rows inserted semi-naively are purely recursive derivations
        // (anything with non-recursive support was already in `gained`),
        // so their fresh zero counts are exact.
        seminaive_scc_opts(db, rules, scc_preds, seed, false, opts);
    }
    forward_f.set_arg(seed_inserts as u64);
    drop(forward_f);
    forward_span.end_args(vec![("seed_inserts", (seed_inserts as u64).into())]);

    emit_counters(saved, backward);
    net_deltas(db, scc_preds, &old_scc)
}

fn emit_counters(saved: u64, backward: u64) {
    let reg = incr_obs::registry();
    if saved > 0 {
        reg.counter("datalog.fbf.count_saved_deletes").add(saved);
    }
    if backward > 0 {
        reg.counter("datalog.fbf.backward_checks").add(backward);
    }
}

/// (Re)establish exact derivation counts for one clique — used after
/// initial materialization, after a rollback (counts are a pure function
/// of extents and rules, so recovery is a recount, not a replay), and
/// when switching an engine's maintenance strategy. Aggregate cliques
/// carry no counts and are skipped.
pub fn init_counts_scc(
    db: &mut Database,
    rules: &[CRule],
    scc_preds: &[PredId],
    opts: &EvalOptions,
) {
    if rules.iter().any(|r| r.agg.is_some()) {
        return;
    }
    ensure_indices(db, rules, true);
    let scc_set: HashSet<PredId> = scc_preds.iter().copied().collect();
    let mut heads_nonrec: HashMap<PredId, Vec<&CRule>> = HashMap::new();
    for r in rules {
        if !is_recursive(r, &scc_set) {
            heads_nonrec.entry(r.head.pred).or_default().push(r);
        }
    }
    for &p in scc_preds {
        let list = db.rel(p).sorted();
        let total = list.len();
        let jobs: Vec<&[Tuple]> = opts.chunks(&list).collect();
        let dbr: &Database = db;
        let counted: Vec<(Tuple, u64)> = collect_jobs(
            opts,
            total,
            jobs.len(),
            |i, out: &mut Vec<(Tuple, u64)>| {
                let rs = heads_nonrec.get(&p);
                for t in jobs[i] {
                    let c: u64 = rs.map_or(0, |rs| {
                        rs.iter().map(|&r| rule_derivation_count(dbr, r, t)).sum()
                    });
                    out.push((t.clone(), c));
                }
            },
            "par.fbf.init",
        );
        for (t, c) in counted {
            db.rel_mut(p).set_support(&t, sat(c));
        }
    }
}

/// Check the count invariant for one clique: every live tuple's stored
/// count is positive iff its exact non-recursive derivation count is,
/// and never exceeds it. (Stored counts may legitimately *undercount*
/// between recounts — decrements use an overestimate of the destroyed
/// derivations — so exact equality is not required.) Aggregate cliques
/// are vacuously consistent.
pub fn counts_consistent(db: &Database, rules: &[CRule], scc_preds: &[PredId]) -> bool {
    if rules.iter().any(|r| r.agg.is_some()) {
        return true;
    }
    let scc_set: HashSet<PredId> = scc_preds.iter().copied().collect();
    let mut heads_nonrec: HashMap<PredId, Vec<&CRule>> = HashMap::new();
    for r in rules {
        if !is_recursive(r, &scc_set) {
            heads_nonrec.entry(r.head.pred).or_default().push(r);
        }
    }
    for &p in scc_preds {
        let rs = heads_nonrec.get(&p);
        for t in db.rel(p).iter() {
            let truth: u64 = rs.map_or(0, |rs| {
                rs.iter().map(|&r| rule_derivation_count(db, r, t)).sum()
            });
            let stored = u64::from(db.rel(p).support(t));
            let ok = if truth == 0 {
                stored == 0
            } else {
                stored >= 1 && stored <= truth
            };
            if !ok {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{compile_program, load_facts, naive_fixpoint};
    use crate::parser::parse_program;

    /// Build a database + compiled rules, fully materialized, with
    /// counts initialized per head predicate's clique.
    fn setup(src: &str) -> (Database, Vec<CRule>) {
        let prog = parse_program(src).unwrap();
        let mut db = Database::new();
        let rules = compile_program(&prog, &mut db);
        load_facts(&prog, &mut db);
        naive_fixpoint(&mut db, &rules);
        (db, rules)
    }

    fn recompute(src: &str) -> Database {
        let (db, _) = setup(src);
        db
    }

    const TC: &str = "path(X, Y) :- edge(X, Y).\n\
                      path(X, Z) :- path(X, Y), edge(Y, Z).\n";

    fn path_rules(db: &Database, rules: &[CRule]) -> (Vec<CRule>, PredId) {
        let path = db.pred_id("path").unwrap();
        (
            rules.iter().filter(|r| r.head.pred == path).cloned().collect(),
            path,
        )
    }

    fn tc_update_opts(
        db: &mut Database,
        rules: &[CRule],
        add: &[(&str, &str)],
        del: &[(&str, &str)],
        opts: &EvalOptions,
    ) -> HashMap<PredId, Delta> {
        let edge = db.pred_id("edge").unwrap();
        let (prules, path) = path_rules(db, rules);
        let mut d = Delta::default();
        for (a, b) in add {
            let t = vec![db.sym(a), db.sym(b)];
            if db.rel_mut(edge).insert(t.clone()) {
                d.added.insert(t);
            }
        }
        for (a, b) in del {
            let t = vec![db.sym(a), db.sym(b)];
            if db.rel_mut(edge).remove(&t) {
                d.removed.insert(t);
            }
        }
        let input = HashMap::from([(edge, d)]);
        update_scc_fbf(db, &prules, &[path], &input, opts)
    }

    fn tc_update(
        db: &mut Database,
        rules: &[CRule],
        add: &[(&str, &str)],
        del: &[(&str, &str)],
    ) -> HashMap<PredId, Delta> {
        tc_update_opts(db, rules, add, del, &EvalOptions::sequential())
    }

    fn setup_tc(facts: &str) -> (Database, Vec<CRule>) {
        let (mut db, rules) = setup(&format!("{TC} {facts}"));
        let (prules, path) = path_rules(&db, &rules);
        init_counts_scc(&mut db, &prules, &[path], &EvalOptions::sequential());
        assert!(counts_consistent(&db, &prules, &[path]));
        (db, rules)
    }

    #[test]
    fn strategy_parsing_round_trips() {
        assert_eq!(MaintenanceStrategy::parse("dred"), Some(MaintenanceStrategy::DRed));
        assert_eq!(MaintenanceStrategy::parse("FBF"), Some(MaintenanceStrategy::Fbf));
        assert_eq!(MaintenanceStrategy::parse("counting"), Some(MaintenanceStrategy::Fbf));
        assert_eq!(MaintenanceStrategy::parse("nope"), None);
        assert_eq!(MaintenanceStrategy::Fbf.to_string(), "fbf");
        assert_eq!(MaintenanceStrategy::default(), MaintenanceStrategy::DRed);
    }

    #[test]
    fn insertion_matches_recompute() {
        let base = format!("{TC} edge(a, b). edge(b, c).");
        let (mut db, rules) = setup_tc("edge(a, b). edge(b, c).");
        tc_update(&mut db, &rules, &[("c", "d")], &[]);
        let truth = recompute(&format!("{base} edge(c, d)."));
        let p1 = db.pred_id("path").unwrap();
        let p2 = truth.pred_id("path").unwrap();
        assert_eq!(db.rel(p1).sorted(), truth.rel(p2).sorted());
        let (prules, path) = path_rules(&db, &rules);
        assert!(counts_consistent(&db, &prules, &[path]));
    }

    #[test]
    fn deletion_with_alternative_derivation_survives() {
        let (mut db, rules) = setup_tc("edge(a, b). edge(b, c). edge(a, c).");
        let out = tc_update(&mut db, &rules, &[], &[("b", "c")]);
        assert!(db.has_fact("path", &["a", "c"]), "alternative derivation survives");
        assert!(!db.has_fact("path", &["b", "c"]));
        let path = db.pred_id("path").unwrap();
        assert_eq!(out[&path].removed.len(), 1, "only path(b, c) is a net removal");
        let (prules, path) = path_rules(&db, &rules);
        assert!(counts_consistent(&db, &prules, &[path]));
    }

    #[test]
    fn deletion_cascades_through_recursion() {
        let (mut db, rules) = setup_tc("edge(a, b). edge(b, c). edge(c, d).");
        tc_update(&mut db, &rules, &[], &[("a", "b")]);
        let truth = recompute(&format!("{TC} edge(b, c). edge(c, d)."));
        let p = db.pred_id("path").unwrap();
        let q = truth.pred_id("path").unwrap();
        assert_eq!(db.rel(p).sorted().len(), truth.rel(q).sorted().len());
        assert!(!db.has_fact("path", &["a", "d"]));
        assert!(db.has_fact("path", &["b", "d"]));
    }

    #[test]
    fn cyclic_deletion_rederives_correctly() {
        let (mut db, rules) = setup_tc("edge(a, b). edge(b, c). edge(c, a). edge(a, c).");
        tc_update(&mut db, &rules, &[], &[("b", "c")]);
        let truth = recompute(&format!("{TC} edge(a, b). edge(c, a). edge(a, c)."));
        let p = db.pred_id("path").unwrap();
        let q = truth.pred_id("path").unwrap();
        assert_eq!(db.rel(p).sorted(), truth.rel(q).sorted());
        let (prules, path) = path_rules(&db, &rules);
        assert!(counts_consistent(&db, &prules, &[path]));
    }

    #[test]
    fn mixed_add_and_delete_matches_recompute() {
        let (mut db, rules) = setup_tc(
            "edge(a, b). edge(b, c). edge(c, a). edge(a, c). edge(c, d). edge(d, e).",
        );
        tc_update(&mut db, &rules, &[("e", "a"), ("b", "f")], &[("b", "c"), ("c", "d")]);
        let truth = recompute(&format!(
            "{TC} edge(a, b). edge(c, a). edge(a, c). edge(d, e). edge(e, a). edge(b, f)."
        ));
        let p = db.pred_id("path").unwrap();
        let q = truth.pred_id("path").unwrap();
        assert_eq!(db.rel(p).sorted(), truth.rel(q).sorted());
        let (prules, path) = path_rules(&db, &rules);
        assert!(counts_consistent(&db, &prules, &[path]));
    }

    #[test]
    fn parallel_update_matches_sequential() {
        let facts = "edge(a, b). edge(b, c). edge(c, a). edge(a, c). edge(c, d). edge(d, e).";
        let run = |opts: &EvalOptions| {
            let (mut db, rules) = setup(&format!("{TC} {facts}"));
            let (prules, path) = path_rules(&db, &rules);
            init_counts_scc(&mut db, &prules, &[path], opts);
            let out = tc_update_opts(
                &mut db,
                &rules,
                &[("e", "a"), ("b", "f")],
                &[("b", "c"), ("c", "d")],
                opts,
            );
            let d = &out[&path];
            (
                db.rel(path).sorted(),
                sorted_list(&d.added),
                sorted_list(&d.removed),
            )
        };
        let seq = run(&EvalOptions::sequential());
        let mut par_opts = EvalOptions::with_threads(4);
        par_opts.min_parallel_tuples = 0;
        let par = run(&par_opts);
        assert_eq!(seq, par);
    }

    #[test]
    fn nonrecursive_clique_decrements_without_propagation() {
        // Two independent derivations of hot(x); deleting one input must
        // be absorbed by the count (no deletion, saved counter bumped).
        let src = "hot(X) :- alarm(X).\nhot(X) :- sensor(X).\n\
                   alarm(x). sensor(x). alarm(y).";
        let (mut db, rules) = setup(src);
        let hot = db.pred_id("hot").unwrap();
        let hrules: Vec<CRule> = rules.iter().filter(|r| r.head.pred == hot).cloned().collect();
        let opts = EvalOptions::sequential();
        init_counts_scc(&mut db, &hrules, &[hot], &opts);
        let tx = vec![db.sym("x")];
        assert_eq!(db.rel(hot).support(&tx), 2);

        let saved_before = incr_obs::registry()
            .counter("datalog.fbf.count_saved_deletes")
            .get();
        let alarm = db.pred_id("alarm").unwrap();
        db.rel_mut(alarm).remove(&tx);
        let mut d = Delta::default();
        d.removed.insert(tx.clone());
        let out = update_scc_fbf(&mut db, &hrules, &[hot], &HashMap::from([(alarm, d)]), &opts);
        assert!(db.has_fact("hot", &["x"]), "second derivation keeps hot(x)");
        assert!(out[&hot].is_empty(), "no net change");
        assert_eq!(db.rel(hot).support(&tx), 1);
        let saved_after = incr_obs::registry()
            .counter("datalog.fbf.count_saved_deletes")
            .get();
        assert!(saved_after > saved_before, "decrement path was taken");
        assert!(counts_consistent(&db, &hrules, &[hot]));
    }

    #[test]
    fn nonrecursive_clique_deletes_on_zero() {
        let src = "hot(X) :- alarm(X).\nhot(X) :- sensor(X).\n\
                   alarm(x). alarm(y).";
        let (mut db, rules) = setup(src);
        let hot = db.pred_id("hot").unwrap();
        let hrules: Vec<CRule> = rules.iter().filter(|r| r.head.pred == hot).cloned().collect();
        let opts = EvalOptions::sequential();
        init_counts_scc(&mut db, &hrules, &[hot], &opts);
        let alarm = db.pred_id("alarm").unwrap();
        let tx = vec![db.sym("x")];
        db.rel_mut(alarm).remove(&tx);
        let mut d = Delta::default();
        d.removed.insert(tx);
        let out = update_scc_fbf(&mut db, &hrules, &[hot], &HashMap::from([(alarm, d)]), &opts);
        assert!(!db.has_fact("hot", &["x"]));
        assert!(db.has_fact("hot", &["y"]));
        assert_eq!(out[&hot].removed.len(), 1);
        assert!(counts_consistent(&db, &hrules, &[hot]));
    }

    #[test]
    fn negation_edits_maintain_counts() {
        let src = "allowed(X) :- user(X), !banned(X).\n\
                   user(u1). user(u2). banned(u2).";
        let (mut db, rules) = setup(src);
        let allowed = db.pred_id("allowed").unwrap();
        let arules: Vec<CRule> =
            rules.iter().filter(|r| r.head.pred == allowed).cloned().collect();
        let opts = EvalOptions::sequential();
        init_counts_scc(&mut db, &arules, &[allowed], &opts);

        // Ban u1: insertion through negation deletes allowed(u1).
        let banned = db.pred_id("banned").unwrap();
        let t1 = vec![db.sym("u1")];
        db.rel_mut(banned).insert(t1.clone());
        let mut d = Delta::default();
        d.added.insert(t1);
        let out =
            update_scc_fbf(&mut db, &arules, &[allowed], &HashMap::from([(banned, d)]), &opts);
        assert!(!db.has_fact("allowed", &["u1"]));
        assert_eq!(out[&allowed].removed.len(), 1);

        // Unban u2: deletion through negation derives allowed(u2).
        let t2 = vec![db.sym("u2")];
        db.rel_mut(banned).remove(&t2);
        let mut d = Delta::default();
        d.removed.insert(t2);
        let out =
            update_scc_fbf(&mut db, &arules, &[allowed], &HashMap::from([(banned, d)]), &opts);
        assert!(db.has_fact("allowed", &["u2"]));
        assert_eq!(out[&allowed].added.len(), 1);
        assert!(counts_consistent(&db, &arules, &[allowed]));
    }

    #[test]
    fn reinsert_after_delete_reestablishes_support() {
        // Deleting the last derivation tombstones the row; re-adding the
        // input allocates a fresh row whose count must be re-established.
        let src = "hot(X) :- alarm(X).\nhot(X) :- sensor(X).\nalarm(x).";
        let (mut db, rules) = setup(src);
        let hot = db.pred_id("hot").unwrap();
        let hrules: Vec<CRule> = rules.iter().filter(|r| r.head.pred == hot).cloned().collect();
        let opts = EvalOptions::sequential();
        init_counts_scc(&mut db, &hrules, &[hot], &opts);
        let alarm = db.pred_id("alarm").unwrap();
        let tx = vec![db.sym("x")];
        db.rel_mut(alarm).remove(&tx);
        let mut d = Delta::default();
        d.removed.insert(tx.clone());
        update_scc_fbf(&mut db, &hrules, &[hot], &HashMap::from([(alarm, d)]), &opts);
        assert!(!db.has_fact("hot", &["x"]));
        db.rel_mut(alarm).insert(tx.clone());
        let mut d = Delta::default();
        d.added.insert(tx.clone());
        update_scc_fbf(&mut db, &hrules, &[hot], &HashMap::from([(alarm, d)]), &opts);
        assert!(db.has_fact("hot", &["x"]));
        assert_eq!(db.rel(hot).support(&tx), 1);
        assert!(counts_consistent(&db, &hrules, &[hot]));
    }

    #[test]
    fn counts_survive_a_long_update_sequence() {
        let (mut db, rules) = setup_tc("edge(a, b). edge(b, c). edge(c, d). edge(d, a).");
        type Pairs<'a> = &'a [(&'a str, &'a str)];
        let edits: &[(Pairs, Pairs)] = &[
            (&[("b", "e")], &[("a", "b")]),
            (&[("a", "b")], &[("c", "d")]),
            (&[("c", "d"), ("e", "a")], &[("b", "e")]),
            (&[], &[("d", "a"), ("a", "b")]),
            (&[("a", "d")], &[]),
        ];
        for (add, del) in edits {
            tc_update(&mut db, &rules, add, del);
            let (prules, path) = path_rules(&db, &rules);
            assert!(counts_consistent(&db, &prules, &[path]));
        }
        // Ground truth for the final edge set {bc, cd, ea, ad} — checked
        // by membership (the recomputed db would intern symbols in a
        // different order, so raw tuple comparison is meaningless).
        let p = db.pred_id("path").unwrap();
        let expect = [("a", "d"), ("b", "c"), ("b", "d"), ("c", "d"), ("e", "a"), ("e", "d")];
        assert_eq!(db.rel(p).len(), expect.len());
        for (x, y) in expect {
            assert!(db.has_fact("path", &[x, y]), "missing path({x}, {y})");
        }
    }
}
