//! Hash-partitioned sharded runtime: N independent scheduler+engine
//! instances over one logical database.
//!
//! Every relation is partitioned by a stable content hash of its first
//! column: shard `s` *owns* the tuples whose first value hashes to `s`.
//! Each shard runs a full [`IncrementalEngine`] (scheduler, task DAG,
//! arena, MVCC epochs) over a rewritten copy of the program, and a batch
//! of base edits fans out to the owning shards, which then update in
//! parallel.
//!
//! ## Rule classification
//!
//! At analysis time every rule is classified by its join structure
//! against the *anchor* — the head's first argument, when it is a plain
//! variable:
//!
//! * **Local** — the anchor is a variable and at least one positive body
//!   atom has it in first position. Those *anchored* atoms are read from
//!   the shard's own partition; every other atom (non-anchored
//!   positives, and all negated atoms) is rewritten to read a **mirror**
//!   (see below). Each shard then derives roughly `1/N` of the head:
//!   all bindings whose anchor value it owns.
//! * **Replicated** — no anchored atom exists (constant or aggregate
//!   first head arg, or no positive atom leads with the anchor). Every
//!   body atom reads a mirror, so each shard derives the rule's full
//!   global output. Correct everywhere, parallel nowhere — the analysis
//!   exists to make these rare.
//!
//! ## Mirrors and cross-shard delta exchange
//!
//! A predicate read non-anchored gets a companion base predicate
//! `p__mirror` on every shard holding the *global* extent of `p`. Base
//! mirrors are fed directly at edit-routing time. Derived mirrors are
//! fed by rounds of delta exchange: after each parallel update round,
//! every shard extracts the net delta of its *owned* slice of each
//! exchanged predicate (the delta-restriction trick — only deltas ever
//! cross shards, never full foreign relations) and broadcasts it as
//! [`TypedEdit`]s over a bounded channel; the next round applies them to
//! every mirror. Rounds repeat until no shard produces new deltas.
//! Owned-slice filtering makes the broadcasts a disjoint exact cover,
//! so mirrors converge to precisely the global extent.
//!
//! One shape is excluded from the exchange: a recursive component whose
//! cycle would pass *through* a mirror (e.g. right-recursive closure,
//! whose recursive atom is not anchored). There, deletion deadlocks —
//! the owner's DRed rederives the doomed tuple from the stale mirror
//! copy, so no retraction is ever broadcast and the mirror never
//! changes. Such components are **forced replicated**: every shard runs
//! the full recursion locally against exact lower-stratum mirrors, and
//! same-component atoms read the local copy, so the cycle lives inside
//! one engine where DRed already handles it (see [`ShardPlan::cyclic`]).
//!
//! ## Invariants
//!
//! With `local(s, p)` the extent of `p` on shard `s` at exchange
//! fixpoint and `owned(s, p)` the globally-true tuples whose first
//! value hashes to `s`:
//!
//! * **Owned-slice exactness**: `local(s, p) ∩ owned-keys(s) =
//!   owned(s, p)`. Non-owned slices may hold extra garbage (from joins
//!   over non-owned tuples that leaked into a local partition), but
//!   never pollute an owned slice: anchored reads bind the head anchor
//!   to the garbage's non-owned key, so derived garbage stays in
//!   non-owned slices, and mirrors/queries filter by ownership.
//! * **Queries**: point lookups route to the owner (whose slice is
//!   exact); scans take the ownership-filtered union over shards.
//! * **Publish point**: per-round engine publishes are suppressed; all
//!   shards publish exactly once per committed batch, so every shard's
//!   epoch counts whole batches and snapshot readers see consistent
//!   cuts. A failed round leaves epochs unpublished — readers keep the
//!   last committed batch.
//! * **Atomic batches**: a shard failure (typed error, panic, or a
//!   barrier miss caught by the round watchdog) aborts the whole batch:
//!   every shard reverse-replays its staged undo logs back to the
//!   pre-batch state — partial mirror feeds included — no epoch
//!   publishes, and the caller gets [`EngineError::ShardFailed`] with a
//!   per-shard snapshot. Retrying the batch is idempotent.
//!
//! Typed edits ([`TypedEdit`], [`PortableValue`]) carry values across
//! shards without rendering to text, so the symbol `"42"` and the
//! integer `42` survive the trip distinct.

use crate::ast::{Literal, Program, Rule, Term};
use crate::engine::{EngineError, FactEdit, IncrementalEngine, TypedEdit, UpdateReport};
use crate::incr::Delta;
use crate::par::EvalOptions;
use crate::parser::parse_program;
use crate::query::parse_pattern;
use crate::rel::{Database, PredId};
use crate::value::{Tuple, Value};
use incr_dag::Dag;
use incr_obs::flight::{self, FlightCode};
use incr_obs::json::Json;
use incr_sched::Scheduler;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Suffix of the per-shard companion predicates holding global extents.
pub const MIRROR_SUFFIX: &str = "__mirror";

fn mirror_name(pred: &str) -> String {
    format!("{pred}{MIRROR_SUFFIX}")
}

/// A self-contained constant: what a [`crate::value::Value`] is once
/// detached from a database's interner. The routing hash and the
/// cross-shard exchange both run on these.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PortableValue {
    Int(i64),
    Text(String),
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl PortableValue {
    /// Parse edit-argument text exactly like the engine's string-edit
    /// path interns it: integer literals become ints, everything else a
    /// symbol. Keeping these two in lockstep is what makes the routing
    /// hash agree with the stored value.
    pub fn parse(text: &str) -> PortableValue {
        match text.parse::<i64>() {
            Ok(i) => PortableValue::Int(i),
            Err(_) => PortableValue::Text(text.to_string()),
        }
    }

    /// Detach a stored value from its database.
    pub fn of_value(v: Value, db: &Database) -> PortableValue {
        match v {
            Value::Int(i) => PortableValue::Int(i),
            Value::Sym(s) => PortableValue::Text(db.interner.name(s).to_string()),
        }
    }

    /// Re-attach to a (different) database's interner.
    pub(crate) fn intern(&self, db: &mut Database) -> Value {
        match self {
            PortableValue::Int(i) => Value::Int(*i),
            PortableValue::Text(s) => db.sym(s),
        }
    }

    /// Stable content hash: identical across processes, databases, and
    /// interner states. Ints and symbols hash in disjoint streams, so
    /// the symbol `"42"` (quoted in source) and the integer `42` land
    /// independently.
    pub fn shard_hash(&self) -> u64 {
        match self {
            PortableValue::Int(i) => fnv1a(FNV_OFFSET ^ 0x49, &i.to_le_bytes()),
            PortableValue::Text(s) => fnv1a(FNV_OFFSET ^ 0x53, s.as_bytes()),
        }
    }

    fn shard(&self, shards: usize) -> usize {
        (self.shard_hash() % shards as u64) as usize
    }
}

/// Owning shard of a tuple identified by its first argument's text
/// (zero-arity tuples belong to shard 0 by convention).
pub fn shard_of_first(args: &[String], shards: usize) -> usize {
    args.first()
        .map_or(0, |a| PortableValue::parse(a).shard(shards))
}

/// Owning shard of a stored tuple.
pub(crate) fn tuple_shard(t: &[Value], db: &Database, shards: usize) -> usize {
    match t.first() {
        None => 0,
        Some(v) => PortableValue::of_value(*v, db).shard(shards),
    }
}

/// Mirror of the executor's `INCR_BLACKBOX_DIR` convention: empty, `0`
/// or `off` disables dumping, any other value overrides the directory,
/// unset defaults to `results/blackbox`.
fn default_black_box_dir() -> Option<PathBuf> {
    match std::env::var("INCR_BLACKBOX_DIR") {
        Ok(v) if v.is_empty() || v == "0" || v == "off" => None,
        Ok(v) => Some(PathBuf::from(v)),
        Err(_) => Some(PathBuf::from("results/blackbox")),
    }
}

/// Sliced sleep that aborts as soon as `cancel` is raised; returns
/// `false` when cancelled. This is what keeps an injected "stuck
/// shard" from wedging the round's thread join after the barrier
/// watchdog fires.
fn sleep_unless_cancelled(total: Duration, cancel: &AtomicBool) -> bool {
    let end = Instant::now() + total;
    loop {
        if cancel.load(Ordering::SeqCst) {
            return false;
        }
        let now = Instant::now();
        if now >= end {
            return true;
        }
        std::thread::sleep((end - now).min(Duration::from_millis(1)));
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Partition a flat edit list by owning shard, preserving relative
/// order within each shard. `DeltaQueue` coalescing commutes with this
/// split: a tuple's edits all route to one shard, so coalescing then
/// splitting equals splitting then coalescing per shard.
pub fn split_by_shard(edits: &[FactEdit], shards: usize) -> Vec<Vec<FactEdit>> {
    let mut per: Vec<Vec<FactEdit>> = vec![Vec::new(); shards];
    for e in edits {
        per[shard_of_first(e.arg_texts(), shards)].push(e.clone());
    }
    per
}

/// How a rule executes under partitioning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuleClass {
    /// Anchored on the head's first variable: each shard computes its
    /// owned 1/N of the head from its own partition plus mirrors.
    Local,
    /// Every shard computes the rule's full global output: either no
    /// anchored positive atom exists, or the head sits in a recursive
    /// component that would otherwise recurse through a mirror (see
    /// [`ShardPlan::cyclic`]).
    Replicated,
}

/// The partitioning analysis of one program: the rewritten per-shard
/// program (identical on every shard) plus everything the router and
/// the exchange loop need.
pub struct ShardPlan {
    pub shards: usize,
    /// Rewritten program: facts stripped, non-anchored reads redirected
    /// to `*__mirror` predicates.
    pub program: Program,
    /// Per non-fact rule of the source program: head predicate and class.
    pub classes: Vec<(String, RuleClass)>,
    /// Initial facts as typed edits, routed like any other batch.
    pub facts: Vec<TypedEdit>,
    /// Base (editable) predicates of the source program.
    pub base: BTreeSet<String>,
    /// Predicates some rewritten rule reads through a mirror.
    pub mirrored: BTreeSet<String>,
    /// Mirrored *derived* predicates: their owned deltas are exchanged
    /// between shards each round (base mirrors are fed at routing time).
    pub exchanged: BTreeSet<String>,
    /// Derived predicates in a recursive component that would otherwise
    /// recurse through a mirror; their rules are forced [`RuleClass::Replicated`]
    /// with same-component atoms reading the local copy, so DRed handles
    /// the cycle inside each engine instead of deadlocking on a stale
    /// mirror.
    pub cyclic: BTreeSet<String>,
    /// Every predicate each shard must register even if no rewritten
    /// rule mentions it (original name + arity, plus mirrors).
    pub declared: Vec<(String, usize)>,
    /// Arity of every source-program predicate.
    pub arity: BTreeMap<String, usize>,
}

fn anchor_var(rule: &Rule) -> Option<&str> {
    match rule.head.terms.first() {
        Some(Term::Var(v)) => Some(v.as_str()),
        _ => None,
    }
}

fn is_anchored(lit: &Literal, anchor: &str) -> bool {
    !lit.negated && matches!(lit.atom.terms.first(), Some(Term::Var(v)) if v == anchor)
}

impl ShardPlan {
    /// Classify every rule and rewrite the program for per-shard
    /// execution.
    pub fn analyze(program: &Program, shards: usize) -> Result<ShardPlan, EngineError> {
        if shards == 0 {
            return Err(EngineError::Edit("shard count must be at least 1".into()));
        }
        let arities = program.predicate_arities().map_err(EngineError::Edit)?;
        if let Some((p, _)) = arities.iter().find(|(p, _)| p.ends_with(MIRROR_SUFFIX)) {
            return Err(EngineError::Edit(format!(
                "predicate name {p} collides with the reserved {MIRROR_SUFFIX} suffix"
            )));
        }
        let derived: BTreeSet<String> = program
            .derived_predicates()
            .into_iter()
            .map(str::to_string)
            .collect();

        // Derived-predicate dependency closure, to find recursion that
        // would otherwise route through a mirror. A rule whose body
        // mirror-reads a predicate in its own recursive component closes
        // a derivation cycle through the exchange, and DRed then
        // deadlocks on deletion: the owner cannot retract a tuple whose
        // local rederivation is supported by the stale mirror copy, and
        // the mirror is never retracted because the owner broadcasts no
        // delta. Such components are *forced replicated* — every shard
        // runs the full recursion locally (same-component atoms read the
        // local copy, which each shard keeps at the full global extent),
        // so the cycle lives inside one engine where DRed handles it.
        let mut deps: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for r in &program.rules {
            if r.is_fact() {
                continue;
            }
            let entry = deps.entry(r.head.pred.as_str()).or_default();
            entry.extend(
                r.body
                    .iter()
                    .map(|l| l.atom.pred.as_str())
                    .filter(|p| derived.contains(*p)),
            );
        }
        let reach: BTreeMap<&str, BTreeSet<&str>> = derived
            .iter()
            .map(|p| {
                let mut seen: BTreeSet<&str> = BTreeSet::new();
                let mut stack: Vec<&str> =
                    deps.get(p.as_str()).into_iter().flatten().copied().collect();
                while let Some(q) = stack.pop() {
                    if seen.insert(q) {
                        stack.extend(deps.get(q).into_iter().flatten().copied());
                    }
                }
                (p.as_str(), seen)
            })
            .collect();
        let same_scc = |a: &str, b: &str| {
            reach.get(a).is_some_and(|r| r.contains(b))
                && reach.get(b).is_some_and(|r| r.contains(a))
        };
        let mut cyclic: BTreeSet<String> = BTreeSet::new();
        for r in &program.rules {
            if r.is_fact() {
                continue;
            }
            let anchor = anchor_var(r);
            let local = anchor.is_some_and(|a| r.body.iter().any(|l| is_anchored(l, a)));
            for l in &r.body {
                // `local` implies the anchor exists, so the is_some_and
                // can never silently mis-classify.
                let kept = local && anchor.is_some_and(|a| is_anchored(l, a));
                if !kept && same_scc(&r.head.pred, &l.atom.pred) {
                    cyclic.insert(r.head.pred.clone());
                }
            }
        }
        let cyclic: BTreeSet<String> = derived
            .iter()
            .filter(|p| cyclic.iter().any(|c| same_scc(c, p)))
            .cloned()
            .collect();

        let mut facts = Vec::new();
        let mut rewritten = Vec::new();
        let mut classes = Vec::new();
        let mut mirrored: BTreeSet<String> = BTreeSet::new();
        for r in &program.rules {
            if r.is_fact() {
                if derived.contains(&r.head.pred) {
                    return Err(EngineError::Edit(format!(
                        "sharded mode does not support ground facts on derived predicate {}",
                        r.head.pred
                    )));
                }
                let mut args = Vec::with_capacity(r.head.terms.len());
                for t in &r.head.terms {
                    match t {
                        Term::Int(i) => args.push(PortableValue::Int(*i)),
                        Term::Sym(s) => args.push(PortableValue::Text(s.clone())),
                        // `is_fact` excludes variable heads, but surface
                        // a typed error rather than trusting that here.
                        Term::Var(_) | Term::Agg(..) => {
                            return Err(EngineError::Edit(format!(
                                "fact {} has a non-ground argument",
                                r.head.pred
                            )))
                        }
                    }
                }
                facts.push(TypedEdit {
                    pred: r.head.pred.clone(),
                    args,
                    adding: true,
                });
                continue;
            }
            let forced = cyclic.contains(&r.head.pred);
            let anchor = anchor_var(r);
            let local =
                !forced && anchor.is_some_and(|a| r.body.iter().any(|l| is_anchored(l, a)));
            let body = r
                .body
                .iter()
                .map(|l| {
                    // Forced-replicated rules keep same-component atoms
                    // on the local (full-global) copy; everything else
                    // follows the anchoring rule.
                    let keep = if forced {
                        !l.negated && same_scc(&r.head.pred, &l.atom.pred)
                    } else {
                        local && anchor.is_some_and(|a| is_anchored(l, a))
                    };
                    if keep {
                        l.clone()
                    } else {
                        mirrored.insert(l.atom.pred.clone());
                        let mut atom = l.atom.clone();
                        atom.pred = mirror_name(&l.atom.pred);
                        Literal {
                            atom,
                            negated: l.negated,
                        }
                    }
                })
                .collect();
            classes.push((
                r.head.pred.clone(),
                if local {
                    RuleClass::Local
                } else {
                    RuleClass::Replicated
                },
            ));
            rewritten.push(Rule {
                head: r.head.clone(),
                body,
            });
        }

        let exchanged: BTreeSet<String> = mirrored.intersection(&derived).cloned().collect();
        let base: BTreeSet<String> = arities
            .iter()
            .filter(|(p, _)| !derived.contains(p))
            .map(|(p, _)| p.clone())
            .collect();
        let mut declared = arities.clone();
        for m in &mirrored {
            // Every mirrored predicate came from a body atom of the same
            // program `arities` was computed from.
            let a = arities
                .iter()
                .find(|(p, _)| p == m)
                .ok_or_else(|| {
                    EngineError::Edit(format!("mirrored predicate {m} has no known arity"))
                })?
                .1;
            declared.push((mirror_name(m), a));
        }
        Ok(ShardPlan {
            shards,
            program: Program { rules: rewritten },
            classes,
            facts,
            base,
            mirrored,
            exchanged,
            cyclic,
            declared,
            arity: arities.into_iter().collect(),
        })
    }

    fn class_count(&self, c: RuleClass) -> usize {
        self.classes.iter().filter(|(_, k)| *k == c).count()
    }
}

/// What one sharded batch did, summed over shards and rounds.
#[derive(Clone, Debug, Default)]
pub struct ShardUpdateReport {
    /// Parallel update rounds run (1 = no cross-shard propagation).
    pub rounds: usize,
    /// Rounds beyond the first, i.e. rounds triggered by exchanged
    /// deltas.
    pub exchange_rounds: usize,
    /// Mirror delta tuples broadcast between shards.
    pub exchanged_tuples: usize,
    /// Scheduler tasks dispatched, summed over shards and rounds.
    pub tasks_executed: usize,
    /// Activation edges fired, summed over shards and rounds.
    pub edges_fired: usize,
}

/// Why one shard failed its round of a sharded batch (the `cause` of
/// [`EngineError::ShardFailed`]).
#[derive(Debug)]
pub enum ShardCause {
    /// The shard's engine returned a typed error.
    Engine(Box<EngineError>),
    /// The shard's round panicked; the payload message is preserved.
    Panicked(String),
    /// The shard never reached the exchange barrier within the round
    /// deadline — stuck or dead, caught by the barrier watchdog.
    Barrier { waited_ms: u64 },
}

impl std::fmt::Display for ShardCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardCause::Engine(e) => write!(f, "{e}"),
            ShardCause::Panicked(m) => write!(f, "panicked: {m}"),
            ShardCause::Barrier { waited_ms } => {
                write!(f, "missed the exchange barrier (waited {waited_ms} ms)")
            }
        }
    }
}

/// One shard's state in the multi-shard snapshot an abort carries.
#[derive(Clone, Debug)]
pub struct ShardStatus {
    pub shard: usize,
    /// Rounds this shard completed within the failed batch.
    pub rounds_done: usize,
    /// Edits queued to this shard in the round that failed.
    pub queued_edits: usize,
    /// Exchange tuples this shard broadcast during the batch.
    pub exchanged_tuples: usize,
    /// `"ok"`, `"failed"`, `"cancelled"`, or `"missed-barrier"`.
    pub state: &'static str,
}

/// An injected fault at one `(shard, round)` site — what a
/// [`ShardFaultHook`] may ask a shard to do at round entry. The hook
/// fires *before* the shard's engine runs, so an injected panic or
/// failure never leaves untracked partial deltas behind.
#[derive(Clone, Debug)]
pub enum ShardFault {
    /// Panic with this message.
    Panic(String),
    /// Sleep this long before evaluating the round (cancellable: the
    /// sleep is sliced and aborts as soon as a sibling failure or the
    /// barrier watchdog cancels the round).
    Delay(Duration),
    /// Return a typed error.
    Fail(String),
}

/// Fault-injection hook interrogated by every shard at the entry of
/// every exchange round, as `(shard, round)`. Test-only in spirit, but
/// a plain field so chaos harnesses outside this crate can arm it.
pub type ShardFaultHook = Arc<dyn Fn(usize, usize) -> Option<ShardFault> + Send + Sync>;

/// Default per-round barrier deadline; generous because a round may
/// re-evaluate large cliques, but finite so a dead shard surfaces as
/// [`EngineError::ShardFailed`] instead of a hang.
pub const DEFAULT_ROUND_DEADLINE: Duration = Duration::from_secs(30);

/// N hash-partitioned [`IncrementalEngine`]s behind one logical
/// database: batches fan out to owning shards, shards update in
/// parallel (each under its own scheduler), cross-shard rules converge
/// by delta exchange, and all shards publish one MVCC epoch per batch.
///
/// Batches are all-or-nothing across shards: each round's undo log is
/// staged per shard, and any shard failure (typed error, panic, or
/// missed barrier) rolls every shard back to its pre-batch state and
/// publishes no epoch — see [`Self::apply_batch`].
pub struct ShardedEngine {
    plan: ShardPlan,
    engines: Vec<IncrementalEngine>,
    scheds: Vec<Box<dyn Scheduler + Send>>,
    /// Barrier watchdog: how long the coordinator waits for all shards
    /// to report one round before declaring the batch failed.
    round_deadline: Duration,
    /// Chaos-harness hook; `None` in production.
    fault_hook: Option<ShardFaultHook>,
    /// Where to dump flight-recorder black boxes on abort; `None`
    /// disables.
    black_box: Option<PathBuf>,
}

/// Safety cap on exchange rounds; real programs converge in a handful
/// (bounded by strata plus recursive path length through mirrors).
const MAX_ROUNDS: usize = 100_000;

impl ShardedEngine {
    /// Parse, analyze, build one engine per shard, and materialize the
    /// program's facts as the first committed batch. Per-shard
    /// evaluation is sequential — the parallelism budget is spent
    /// across shards, not inside them.
    pub fn new(
        src: &str,
        shards: usize,
        make_sched: impl FnMut(Arc<Dag>) -> Box<dyn Scheduler + Send>,
    ) -> Result<ShardedEngine, EngineError> {
        Self::with_options(src, shards, EvalOptions::sequential(), make_sched)
    }

    /// [`Self::new`] with explicit per-shard evaluation options.
    pub fn with_options(
        src: &str,
        shards: usize,
        opts: EvalOptions,
        mut make_sched: impl FnMut(Arc<Dag>) -> Box<dyn Scheduler + Send>,
    ) -> Result<ShardedEngine, EngineError> {
        let program = parse_program(src).map_err(EngineError::Parse)?;
        let plan = ShardPlan::analyze(&program, shards)?;
        let engines = (0..shards)
            .map(|_| {
                IncrementalEngine::from_program_declared(
                    plan.program.clone(),
                    opts.clone(),
                    &plan.declared,
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        let scheds = engines
            .iter()
            .map(|e| make_sched(e.dag().clone()))
            .collect();
        let reg = incr_obs::registry();
        reg.gauge("shard.count").set(shards as i64);
        reg.gauge("shard.rules.local")
            .set(plan.class_count(RuleClass::Local) as i64);
        reg.gauge("shard.rules.replicated")
            .set(plan.class_count(RuleClass::Replicated) as i64);
        reg.gauge("shard.preds.mirrored").set(plan.mirrored.len() as i64);
        let mut this = ShardedEngine {
            plan,
            engines,
            scheds,
            round_deadline: DEFAULT_ROUND_DEADLINE,
            fault_hook: None,
            black_box: default_black_box_dir(),
        };
        if !this.plan.facts.is_empty() {
            let facts = std::mem::take(&mut this.plan.facts);
            let routed = this.route(&facts)?;
            this.plan.facts = facts;
            this.apply_batch(routed)?;
        }
        Ok(this)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.plan.shards
    }

    /// The partitioning analysis.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Direct access to one shard's engine (snapshots, per-shard stats).
    pub fn shard(&self, s: usize) -> &IncrementalEngine {
        &self.engines[s]
    }

    /// The published epoch (identical on every shard: one publish per
    /// committed batch).
    pub fn epoch(&self) -> u64 {
        self.engines[0].epoch()
    }

    /// Set the barrier watchdog's per-round deadline (default
    /// [`DEFAULT_ROUND_DEADLINE`]). A shard that has not reached the
    /// exchange barrier by then fails the batch with
    /// [`ShardCause::Barrier`] and cancels its siblings.
    pub fn set_round_deadline(&mut self, deadline: Duration) {
        self.round_deadline = deadline;
    }

    /// Install (or clear) a fault-injection hook interrogated by every
    /// shard at round entry. Chaos harnesses arm this; production
    /// leaves it `None`.
    pub fn set_fault_hook(&mut self, hook: Option<ShardFaultHook>) {
        self.fault_hook = hook;
    }

    /// Override where abort-path flight-recorder black boxes go
    /// (default: the `INCR_BLACKBOX_DIR` convention shared with the
    /// executor). `None` disables dumping.
    pub fn set_black_box(&mut self, dir: Option<PathBuf>) {
        self.black_box = dir;
    }

    /// Apply one batch of base-table edits across all shards.
    pub fn update(&mut self, edits: &[FactEdit]) -> Result<ShardUpdateReport, EngineError> {
        let typed: Vec<TypedEdit> = edits
            .iter()
            .map(|e| TypedEdit {
                pred: e.pred_name().to_string(),
                args: e.arg_texts().iter().map(|a| PortableValue::parse(a)).collect(),
                adding: matches!(e, FactEdit::Add { .. }),
            })
            .collect();
        self.update_typed(&typed)
    }

    /// [`Self::update`] with pre-typed values (no text parsing).
    pub fn update_typed(&mut self, edits: &[TypedEdit]) -> Result<ShardUpdateReport, EngineError> {
        let routed = self.route(edits)?;
        self.apply_batch(routed)
    }

    /// Fan a batch out: each edit goes to its owner's partition, and —
    /// when the predicate is mirror-read anywhere — to every shard's
    /// mirror.
    fn route(&self, edits: &[TypedEdit]) -> Result<Vec<Vec<TypedEdit>>, EngineError> {
        let n = self.plan.shards;
        let mut per: Vec<Vec<TypedEdit>> = vec![Vec::new(); n];
        for e in edits {
            let Some(&arity) = self.plan.arity.get(&e.pred) else {
                return Err(EngineError::Edit(format!("unknown predicate {}", e.pred)));
            };
            if !self.plan.base.contains(&e.pred) {
                return Err(EngineError::Edit(format!(
                    "{} is a derived predicate; only base tables can be edited",
                    e.pred
                )));
            }
            if arity != e.args.len() {
                return Err(EngineError::Edit(format!(
                    "{} has arity {arity}, edit has {}",
                    e.pred,
                    e.args.len()
                )));
            }
            let owner = e.args.first().map_or(0, |v| v.shard(n));
            per[owner].push(e.clone());
            if self.plan.mirrored.contains(&e.pred) {
                let m = TypedEdit {
                    pred: mirror_name(&e.pred),
                    args: e.args.clone(),
                    adding: e.adding,
                };
                for slot in &mut per {
                    slot.push(m.clone());
                }
            }
        }
        Ok(per)
    }

    /// The round loop: update every shard in parallel, collect the net
    /// deltas of exchanged predicates restricted to each shard's owned
    /// slice, broadcast them to every mirror, repeat until no shard
    /// produces deltas — then publish one epoch on every shard.
    ///
    /// **All-or-nothing.** Every round returns its undo log through
    /// `update_full`'s `undo_out`, staged per shard across the batch.
    /// When any shard's round returns an error or panics, or misses the
    /// barrier watchdog's per-round deadline, sibling shards are
    /// cancelled (cooperatively, at round entry and inside delay
    /// slices), every shard's staged log is replayed in reverse —
    /// restoring pre-batch state bit-for-bit, stale mirror feeds
    /// included — and no epoch publishes, so snapshot readers pinned on
    /// any shard keep the last committed batch and a retry of the same
    /// batch is idempotent. The failure surfaces as
    /// [`EngineError::ShardFailed`] carrying a multi-shard
    /// [`ShardStatus`] snapshot, plus a flight-recorder black box
    /// spanning all shards' lanes when dumping is enabled.
    ///
    /// One caveat: a panic raised *inside* a shard's engine mid-cascade
    /// can leave deltas its (never returned) undo log tracked alone.
    /// The engine's own failure mode is typed errors with internal
    /// rollback, and the injected chaos faults fire before the engine
    /// runs, so in practice the staged logs are exact.
    fn apply_batch(&mut self, mut inbox: Vec<Vec<TypedEdit>>) -> Result<ShardUpdateReport, EngineError> {
        let n = self.plan.shards;
        let mut report = ShardUpdateReport::default();
        // Per-shard undo logs staged across rounds; replayed in reverse
        // only if the batch aborts.
        let mut batch_undo: Vec<Vec<(PredId, Delta)>> = (0..n).map(|_| Vec::new()).collect();
        let mut rounds_done = vec![0usize; n];
        let mut exch_sent = vec![0usize; n];
        loop {
            report.rounds += 1;
            let round = report.rounds - 1;
            if report.rounds > MAX_ROUNDS {
                let snapshot: Vec<ShardStatus> = (0..n)
                    .map(|s| ShardStatus {
                        shard: s,
                        rounds_done: rounds_done[s],
                        queued_edits: inbox[s].len(),
                        exchanged_tuples: exch_sent[s],
                        state: "ok",
                    })
                    .collect();
                let cause = ShardCause::Engine(Box::new(EngineError::Edit(
                    "cross-shard exchange did not converge".into(),
                )));
                return Err(self.abort(0, round, cause, false, batch_undo, snapshot));
            }
            let batches = std::mem::replace(&mut inbox, vec![Vec::new(); n]);
            let queued: Vec<usize> = batches.iter().map(Vec::len).collect();
            let exchanged = &self.plan.exchanged;
            let hook = self.fault_hook.clone();
            let deadline = self.round_deadline;

            /// Report, owned-slice broadcasts, and the round's undo log.
            type RoundDone = (UpdateReport, Vec<TypedEdit>, Vec<(PredId, Delta)>);
            enum RoundOutcome {
                Done(Box<RoundDone>),
                Failed(EngineError),
                Panicked(String),
                Cancelled,
            }
            // Outcomes are deposited in per-shard slots (so even a
            // round that finishes *after* the watchdog fired still
            // surrenders its undo log for rollback); the bounded
            // channel is only the completion signal the watchdog waits
            // on.
            let slots: Vec<Mutex<Option<RoundOutcome>>> =
                (0..n).map(|_| Mutex::new(None)).collect();
            let cancel = AtomicBool::new(false);
            let mut on_time = vec![false; n];
            let mut barrier_timeout = false;
            let mut waited_ms = 0u64;
            {
                let slots = &slots;
                let cancel = &cancel;
                let (tx, rx) = crossbeam::channel::bounded::<usize>(n);
                std::thread::scope(|scope| {
                    for (s, ((eng, sched), batch)) in self
                        .engines
                        .iter_mut()
                        .zip(self.scheds.iter_mut())
                        .zip(batches)
                        .enumerate()
                    {
                        let tx = tx.clone();
                        let hook = hook.clone();
                        scope.spawn(move || {
                            flight::set_shard(s as u64 + 1);
                            let fspan = flight::span_arg(FlightCode::ShardRound, round as u64);
                            let body = || -> RoundOutcome {
                                if cancel.load(Ordering::SeqCst) {
                                    return RoundOutcome::Cancelled;
                                }
                                if let Some(h) = &hook {
                                    match h(s, round) {
                                        None => {}
                                        Some(ShardFault::Panic(msg)) => panic!("{msg}"),
                                        Some(ShardFault::Fail(msg)) => {
                                            return RoundOutcome::Failed(EngineError::Edit(msg))
                                        }
                                        Some(ShardFault::Delay(d))
                                            if !sleep_unless_cancelled(d, cancel) =>
                                        {
                                            return RoundOutcome::Cancelled;
                                        }
                                        Some(ShardFault::Delay(_)) => {}
                                    }
                                }
                                if cancel.load(Ordering::SeqCst) {
                                    return RoundOutcome::Cancelled;
                                }
                                let mut collected: HashMap<_, Delta> = HashMap::new();
                                let mut undo: Vec<(PredId, Delta)> = Vec::new();
                                let run = eng.update_full(
                                    sched.as_mut(),
                                    &[],
                                    &batch,
                                    false,
                                    Some(&mut collected),
                                    Some(&mut undo),
                                );
                                match run {
                                    Err(e) => RoundOutcome::Failed(e),
                                    Ok(rep) => {
                                        let db = eng.database();
                                        let mut out = Vec::new();
                                        for (pid, delta) in &collected {
                                            let name = db.pred_name(*pid);
                                            if !exchanged.contains(name) {
                                                continue;
                                            }
                                            let mpred = mirror_name(name);
                                            for (tuples, adding) in
                                                [(&delta.added, true), (&delta.removed, false)]
                                            {
                                                for t in tuples.iter() {
                                                    if tuple_shard(t, &db, n) != s {
                                                        continue;
                                                    }
                                                    out.push(TypedEdit {
                                                        pred: mpred.clone(),
                                                        args: t
                                                            .iter()
                                                            .map(|v| {
                                                                PortableValue::of_value(*v, &db)
                                                            })
                                                            .collect(),
                                                        adding,
                                                    });
                                                }
                                            }
                                        }
                                        // Hash-set iteration order is
                                        // arbitrary; sort so replays are
                                        // deterministic.
                                        out.sort_by(|a, b| {
                                            (&a.pred, &a.args, a.adding)
                                                .cmp(&(&b.pred, &b.args, b.adding))
                                        });
                                        RoundOutcome::Done(Box::new((rep, out, undo)))
                                    }
                                }
                            };
                            let outcome =
                                match std::panic::catch_unwind(AssertUnwindSafe(body)) {
                                    Ok(o) => o,
                                    Err(p) => RoundOutcome::Panicked(panic_message(p)),
                                };
                            drop(fspan);
                            *slots[s].lock().unwrap_or_else(PoisonError::into_inner) =
                                Some(outcome);
                            // Capacity n with one message per shard: the
                            // send cannot block, but keep the timeout
                            // flavor so no refactor can reintroduce an
                            // unbounded wait on this path.
                            let _ = tx.send_timeout(s, Duration::from_secs(1));
                        });
                    }
                    drop(tx);
                    // Barrier watchdog: wait for each shard's completion
                    // signal under a hard per-round deadline instead of
                    // blocking forever on a stuck or dead shard. A
                    // received failure — or deadline expiry — raises the
                    // cancel flag, and sibling shards abandon the round
                    // at their next cooperative check.
                    let started = Instant::now();
                    let hard = started + deadline;
                    let mut received = 0usize;
                    while received < n {
                        let now = Instant::now();
                        if now >= hard {
                            barrier_timeout = true;
                            break;
                        }
                        match rx.recv_timeout(hard - now) {
                            Ok(s) => {
                                received += 1;
                                on_time[s] = true;
                                let failed = matches!(
                                    &*slots[s].lock().unwrap_or_else(PoisonError::into_inner),
                                    Some(
                                        RoundOutcome::Failed(_) | RoundOutcome::Panicked(_)
                                    )
                                );
                                if failed {
                                    cancel.store(true, Ordering::SeqCst);
                                }
                            }
                            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                                barrier_timeout = true;
                                break;
                            }
                            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                        }
                    }
                    if barrier_timeout {
                        waited_ms = started.elapsed().as_millis() as u64;
                        cancel.store(true, Ordering::SeqCst);
                    }
                    // Leaving the scope joins the shard threads:
                    // cancelled shards return at their next cooperative
                    // check, and an engine round always terminates, so
                    // the join is bounded.
                });
            }

            let mut broadcasts: Vec<TypedEdit> = Vec::new();
            let mut failure: Option<(usize, ShardCause)> = None;
            let mut states: Vec<&'static str> = Vec::with_capacity(n);
            for (s, slot) in slots.into_iter().enumerate() {
                let outcome = slot.into_inner().unwrap_or_else(PoisonError::into_inner);
                match outcome {
                    Some(RoundOutcome::Done(b)) => {
                        let (rep, out, undo) = *b;
                        rounds_done[s] += 1;
                        exch_sent[s] += out.len();
                        report.tasks_executed += rep.tasks_executed;
                        report.edges_fired += rep.edges_fired;
                        batch_undo[s].extend(undo);
                        broadcasts.extend(out);
                        states.push(if on_time[s] { "ok" } else { "missed-barrier" });
                    }
                    Some(RoundOutcome::Failed(e)) => {
                        states.push("failed");
                        if failure.is_none() {
                            failure = Some((s, ShardCause::Engine(Box::new(e))));
                        }
                    }
                    Some(RoundOutcome::Panicked(m)) => {
                        states.push("failed");
                        if failure.is_none() {
                            failure = Some((s, ShardCause::Panicked(m)));
                        }
                    }
                    Some(RoundOutcome::Cancelled) => states.push("cancelled"),
                    // The scope join means every shard thread finished;
                    // an empty slot can only mean the thread died before
                    // its deposit. Treat it like a missed barrier.
                    None => states.push("missed-barrier"),
                }
            }
            if failure.is_none() && states.iter().any(|st| *st != "ok") {
                // No shard reported a hard failure, yet the round is
                // incomplete: the watchdog expired (or a shard vanished).
                // Blame the first shard that missed the barrier.
                let victim = states
                    .iter()
                    .position(|st| *st == "missed-barrier")
                    .or_else(|| states.iter().position(|st| *st != "ok"))
                    .unwrap_or(0);
                failure = Some((victim, ShardCause::Barrier { waited_ms }));
            }
            if let Some((shard, cause)) = failure {
                let snapshot: Vec<ShardStatus> = (0..n)
                    .map(|s| ShardStatus {
                        shard: s,
                        rounds_done: rounds_done[s],
                        queued_edits: queued[s],
                        exchanged_tuples: exch_sent[s],
                        state: states[s],
                    })
                    .collect();
                return Err(self.abort(shard, round, cause, barrier_timeout, batch_undo, snapshot));
            }
            if broadcasts.is_empty() {
                break;
            }
            report.exchange_rounds += 1;
            report.exchanged_tuples += broadcasts.len();
            for slot in &mut inbox {
                slot.extend(broadcasts.iter().cloned());
            }
        }
        for eng in &mut self.engines {
            eng.publish_now();
        }
        let reg = incr_obs::registry();
        reg.counter("shard.updates").inc();
        reg.counter("shard.exchange.rounds")
            .add(report.exchange_rounds as u64);
        reg.counter("shard.exchange.tuples")
            .add(report.exchanged_tuples as u64);
        Ok(report)
    }

    /// Cross-shard abort: roll every shard back to its pre-batch state
    /// by reverse-replaying the staged undo logs, count the abort, dump
    /// a flight-recorder black box spanning all shards' lanes, and
    /// build the typed error. Nothing publishes — readers pinned on any
    /// shard keep the last committed batch.
    fn abort(
        &mut self,
        shard: usize,
        round: usize,
        cause: ShardCause,
        barrier: bool,
        batch_undo: Vec<Vec<(PredId, Delta)>>,
        snapshot: Vec<ShardStatus>,
    ) -> EngineError {
        let t0 = Instant::now();
        for (s, undo) in batch_undo.into_iter().enumerate() {
            self.engines[s].rollback_batch(undo);
        }
        let reg = incr_obs::registry();
        reg.counter("shard.rollback_ns")
            .add(t0.elapsed().as_nanos() as u64);
        reg.counter("shard.aborts").inc();
        if barrier {
            reg.counter("shard.exchange_timeouts").inc();
        }
        flight::instant(FlightCode::ShardAbort, shard as u64);
        self.dump_black_box(shard, round, &cause, &snapshot);
        EngineError::ShardFailed {
            shard,
            round,
            cause,
            snapshot,
        }
    }

    /// Dump the flight recorder's rings — every shard's lanes, tagged
    /// by [`flight::set_shard`] — with the abort's context record. IO
    /// problems are counted, never propagated: the dump must not turn
    /// one failure into two.
    fn dump_black_box(
        &self,
        shard: usize,
        round: usize,
        cause: &ShardCause,
        snapshot: &[ShardStatus],
    ) {
        let Some(dir) = self.black_box.as_deref() else {
            return;
        };
        if !flight::enabled() {
            return;
        }
        let shards_json = Json::Arr(
            snapshot
                .iter()
                .map(|st| {
                    Json::Obj(vec![
                        ("shard".to_string(), st.shard.into()),
                        ("rounds_done".to_string(), st.rounds_done.into()),
                        ("queued_edits".to_string(), st.queued_edits.into()),
                        ("exchanged_tuples".to_string(), st.exchanged_tuples.into()),
                        ("state".to_string(), st.state.into()),
                    ])
                })
                .collect(),
        );
        let ctx: Vec<(&'static str, Json)> = vec![
            ("error", cause.to_string().into()),
            ("kind", "shard-failed".into()),
            ("shard", shard.into()),
            ("round", round.into()),
            ("shards", shards_json),
        ];
        let reg = incr_obs::registry();
        match flight::dump_to_dir(dir, "shard-failed", &ctx) {
            Ok(_) => reg.counter("obs.flight.dumps").inc(),
            Err(_) => reg.counter("obs.flight.dump_errors").inc(),
        }
    }

    /// Does `pred(args…)` hold (symbols only)? Routed to the owner,
    /// whose owned slice is exact.
    pub fn has(&self, pred: &str, args: &[&str]) -> bool {
        let owner = args
            .first()
            .map_or(0, |a| PortableValue::parse(a).shard(self.plan.shards));
        self.engines[owner].has(pred, args)
    }

    /// Number of tuples in `pred`: ownership-filtered union over shards.
    pub fn count(&self, pred: &str) -> usize {
        let n = self.plan.shards;
        self.engines
            .iter()
            .enumerate()
            .map(|(s, eng)| {
                let db = eng.database();
                db.pred_id(pred).map_or(0, |id| {
                    db.rel(id)
                        .iter()
                        .filter(|t| tuple_shard(t, &db, n) == s)
                        .count()
                })
            })
            .sum()
    }

    /// Pattern query, e.g. `path(a, ?)`: ownership-filtered union over
    /// shards, rendered and sorted.
    pub fn query(&self, pattern: &str) -> Result<Vec<String>, EngineError> {
        let (pred, pats) = parse_pattern(pattern).map_err(EngineError::Edit)?;
        let n = self.plan.shards;
        let mut rows = Vec::new();
        for (s, eng) in self.engines.iter().enumerate() {
            let db = eng.database();
            let owned: Vec<Tuple> = crate::query::query(&db, &pred, &pats)
                .into_iter()
                .filter(|t| tuple_shard(t, &db, n) == s)
                .collect();
            rows.extend(crate::query::render(&db, &owned));
        }
        rows.sort();
        rows.dedup();
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::DeltaQueue;
    use incr_sched::{Hybrid, LevelBased};

    fn mk_sched(dag: Arc<Dag>) -> Box<dyn Scheduler + Send> {
        Box::new(LevelBased::new(dag))
    }

    /// Keep expected injected-panic unwinds out of test output. Same
    /// contract as the runtime crate's `silence_injected_panics` (which
    /// this crate cannot depend on): chained, idempotent, message-keyed.
    fn silence_test_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains("fault-injected panic"))
                    .unwrap_or(false);
                if !injected {
                    prev(info);
                }
            }));
        });
    }

    const TC: &str = "path(X, Y) :- edge(X, Y).\n\
                      path(X, Z) :- path(X, Y), edge(Y, Z).\n\
                      edge(a, b). edge(b, c).";

    #[test]
    fn hash_is_type_tagged_and_stable() {
        assert_ne!(
            PortableValue::Int(42).shard_hash(),
            PortableValue::Text("42".into()).shard_hash()
        );
        assert_eq!(
            PortableValue::parse("42"),
            PortableValue::Int(42),
            "routing parse matches the engine's string-edit interning"
        );
        assert_eq!(PortableValue::parse("a"), PortableValue::Text("a".into()));
    }

    #[test]
    fn tc_classifies_local_with_one_mirror() {
        let p = parse_program(TC).unwrap();
        let plan = ShardPlan::analyze(&p, 4).unwrap();
        assert_eq!(
            plan.classes,
            vec![
                ("path".to_string(), RuleClass::Local),
                ("path".to_string(), RuleClass::Local),
            ]
        );
        // Only `edge` is mirror-read (second atom of the recursive
        // rule); it is base, so nothing is exchanged between rounds.
        assert_eq!(plan.mirrored.iter().collect::<Vec<_>>(), vec!["edge"]);
        assert!(plan.exchanged.is_empty());
    }

    #[test]
    fn right_recursion_is_forced_replicated() {
        // `path` recurses through a non-anchored self-read: exchanging
        // it would let deleted tuples survive on stale mirror support,
        // so the whole component is replicated and reads itself locally.
        let p = parse_program(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- edge(X, Y), path(Y, Z).",
        )
        .unwrap();
        let plan = ShardPlan::analyze(&p, 2).unwrap();
        assert_eq!(plan.cyclic.iter().collect::<Vec<_>>(), vec!["path"]);
        assert!(plan
            .classes
            .iter()
            .all(|(_, c)| *c == RuleClass::Replicated));
        // No mirror of `path` remains, so nothing is exchanged.
        assert!(plan.exchanged.is_empty());
        assert_eq!(plan.mirrored.iter().collect::<Vec<_>>(), vec!["edge"]);
    }

    #[test]
    fn acyclic_derived_consumer_is_exchanged() {
        // `path` is anchored left recursion (local), and `rev` reads it
        // non-anchored — an acyclic mirror of a derived predicate, fed
        // by the round-based delta exchange.
        let p = parse_program(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- path(X, Y), edge(Y, Z).\n\
             rev(Y, X) :- path(X, Y).",
        )
        .unwrap();
        let plan = ShardPlan::analyze(&p, 2).unwrap();
        assert!(plan.cyclic.is_empty());
        assert!(plan.exchanged.contains("path"));
    }

    #[test]
    fn sharded_tc_matches_unsharded() {
        for shards in [1, 2, 3, 5] {
            let mut e = ShardedEngine::new(TC, shards, mk_sched).unwrap();
            assert_eq!(e.count("path"), 3, "{shards} shards");
            e.update(&[FactEdit::add("edge", &["c", "d"])]).unwrap();
            assert_eq!(e.count("path"), 6, "{shards} shards");
            assert!(e.has("path", &["a", "d"]), "{shards} shards");
            e.update(&[FactEdit::remove("edge", &["b", "c"])]).unwrap();
            // Remaining edges a->b, c->d: two disconnected paths.
            assert_eq!(e.count("path"), 2, "{shards} shards");
            assert!(!e.has("path", &["a", "c"]), "{shards} shards");
        }
    }

    #[test]
    fn negation_and_aggregates_match_unsharded() {
        let src = "lone(X) :- node(X, Y), !edge(X, Y).\n\
                   deg(X, count(Y)) :- edge(X, Y).\n\
                   node(a, b). node(b, a). node(c, a).\n\
                   edge(a, b). edge(a, c).";
        let reference = IncrementalEngine::new(src).unwrap();
        for shards in [1, 2, 4] {
            let mut e = ShardedEngine::new(src, shards, |d| {
                Box::new(Hybrid::new(d)) as Box<dyn Scheduler + Send>
            })
            .unwrap();
            for pat in ["lone(?)", "deg(?, ?)"] {
                let mut want = reference.query(pat).unwrap();
                want.sort();
                assert_eq!(e.query(pat).unwrap(), want, "{shards} shards, {pat}");
            }
            e.update(&[
                FactEdit::remove("edge", &["a", "b"]),
                FactEdit::add("edge", &["c", "a"]),
            ])
            .unwrap();
            let mut reference = IncrementalEngine::new(src).unwrap();
            let dag = reference.dag().clone();
            let mut s: Box<dyn Scheduler> = Box::new(LevelBased::new(dag));
            reference
                .update(
                    s.as_mut(),
                    &[
                        FactEdit::remove("edge", &["a", "b"]),
                        FactEdit::add("edge", &["c", "a"]),
                    ],
                )
                .unwrap();
            for pat in ["lone(?)", "deg(?, ?)"] {
                let mut want = reference.query(pat).unwrap();
                want.sort();
                assert_eq!(e.query(pat).unwrap(), want, "{shards} shards, {pat}");
            }
        }
    }

    #[test]
    fn quoted_numeric_symbol_stays_distinct_from_int() {
        // "42" (symbol) and 42 (int) must partition independently and
        // survive the typed-edit path without collapsing.
        let src = "has(X) :- rel(X, Y).\nrel(\"42\", a). rel(42, b).";
        let mut e = ShardedEngine::new(src, 3, mk_sched).unwrap();
        assert_eq!(e.count("has"), 2);
        e.update(&[FactEdit::remove("rel", &["42", "b"])]).unwrap();
        // The string-edit path parses "42" as the *integer*, matching
        // unsharded semantics: only the int row dies.
        assert_eq!(e.count("has"), 1);
    }

    #[test]
    fn epochs_publish_once_per_batch_on_every_shard() {
        let mut e = ShardedEngine::new(TC, 3, mk_sched).unwrap();
        let before = e.epoch();
        e.update(&[
            FactEdit::add("edge", &["c", "d"]),
            FactEdit::add("edge", &["d", "e"]),
        ])
        .unwrap();
        for s in 0..3 {
            assert_eq!(e.shard(s).epoch(), before + 1, "shard {s}");
        }
    }

    #[test]
    fn derived_predicate_edit_rejected() {
        let mut e = ShardedEngine::new(TC, 2, mk_sched).unwrap();
        assert!(e.update(&[FactEdit::add("path", &["x", "y"])]).is_err());
        assert!(e.update(&[FactEdit::add("nope", &["x"])]).is_err());
    }

    #[test]
    fn injected_failure_rolls_back_all_shards_and_publishes_nothing() {
        // `rev` mirror-reads `path`, so updates take ≥2 rounds and the
        // injected round-1 failure lands *after* round 0 already applied
        // engine deltas and mirror feeds on every shard.
        let src = "path(X, Y) :- edge(X, Y).\n\
                   path(X, Z) :- path(X, Y), edge(Y, Z).\n\
                   rev(Y, X) :- path(X, Y).\n\
                   edge(a, b). edge(b, c).";
        let mut e = ShardedEngine::new(src, 2, mk_sched).unwrap();
        e.set_black_box(None);
        let before_path = e.query("path(?, ?)").unwrap();
        let before_rev = e.query("rev(?, ?)").unwrap();
        let epoch = e.epoch();
        e.set_fault_hook(Some(Arc::new(|s, r| {
            (s == 1 && r == 1).then(|| ShardFault::Fail("boom".into()))
        })));
        let err = e.update(&[FactEdit::add("edge", &["c", "d"])]).unwrap_err();
        match &err {
            EngineError::ShardFailed {
                shard,
                round,
                cause,
                snapshot,
            } => {
                assert_eq!(*shard, 1);
                assert_eq!(*round, 1);
                assert!(matches!(cause, ShardCause::Engine(_)), "{cause}");
                assert_eq!(snapshot.len(), 2);
                assert_eq!(snapshot[1].state, "failed");
            }
            other => panic!("expected ShardFailed, got {other}"),
        }
        assert_eq!(e.query("path(?, ?)").unwrap(), before_path, "rolled back");
        assert_eq!(e.query("rev(?, ?)").unwrap(), before_rev, "rolled back");
        for s in 0..2 {
            assert_eq!(e.shard(s).epoch(), epoch, "shard {s}: no epoch published");
        }
        // Disarmed retry converges bit-identically to fault-free.
        e.set_fault_hook(None);
        e.update(&[FactEdit::add("edge", &["c", "d"])]).unwrap();
        assert!(e.has("path", &["a", "d"]));
        assert!(e.has("rev", &["d", "a"]));
        assert_eq!(e.epoch(), epoch + 1);
    }

    #[test]
    fn injected_panic_is_isolated_and_typed() {
        silence_test_panics();
        let mut e = ShardedEngine::new(TC, 2, mk_sched).unwrap();
        e.set_black_box(None);
        let before = e.query("path(?, ?)").unwrap();
        e.set_fault_hook(Some(Arc::new(|s, _| {
            (s == 0).then(|| ShardFault::Panic("fault-injected panic: unit".into()))
        })));
        let err = e.update(&[FactEdit::add("edge", &["c", "d"])]).unwrap_err();
        match &err {
            EngineError::ShardFailed {
                shard: 0,
                cause: ShardCause::Panicked(m),
                ..
            } => assert!(m.contains("unit"), "payload preserved: {m}"),
            other => panic!("expected panicked shard 0, got {other}"),
        }
        assert_eq!(e.query("path(?, ?)").unwrap(), before);
        e.set_fault_hook(None);
        e.update(&[FactEdit::add("edge", &["c", "d"])]).unwrap();
        assert_eq!(e.count("path"), 6);
    }

    #[test]
    fn barrier_watchdog_fires_and_cancels_siblings() {
        let mut e = ShardedEngine::new(TC, 3, mk_sched).unwrap();
        e.set_black_box(None);
        e.set_round_deadline(Duration::from_millis(50));
        let epoch = e.epoch();
        let before = e.query("path(?, ?)").unwrap();
        // A 30 s "stuck shard": only the watchdog + cancellation keep
        // this test fast.
        e.set_fault_hook(Some(Arc::new(|s, r| {
            (s == 2 && r == 0).then(|| ShardFault::Delay(Duration::from_secs(30)))
        })));
        let t0 = Instant::now();
        let err = e.update(&[FactEdit::add("edge", &["c", "d"])]).unwrap_err();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "watchdog must fire within the deadline, not hang"
        );
        match &err {
            EngineError::ShardFailed { shard, cause, .. } => {
                assert_eq!(*shard, 2);
                assert!(matches!(cause, ShardCause::Barrier { .. }), "{cause}");
            }
            other => panic!("expected ShardFailed, got {other}"),
        }
        assert_eq!(e.query("path(?, ?)").unwrap(), before);
        assert_eq!(e.epoch(), epoch, "no epoch published");
        e.set_fault_hook(None);
        e.update(&[FactEdit::add("edge", &["c", "d"])]).unwrap();
        assert_eq!(e.count("path"), 6);
        assert_eq!(e.epoch(), epoch + 1);
    }

    #[test]
    fn short_delay_under_deadline_still_commits() {
        let mut e = ShardedEngine::new(TC, 2, mk_sched).unwrap();
        e.set_black_box(None);
        e.set_round_deadline(Duration::from_secs(10));
        e.set_fault_hook(Some(Arc::new(|s, r| {
            (s == 0 && r == 0).then(|| ShardFault::Delay(Duration::from_millis(20)))
        })));
        e.update(&[FactEdit::add("edge", &["c", "d"])]).unwrap();
        assert_eq!(e.count("path"), 6, "a jittered barrier is not a failure");
    }

    /// Satellite invariant: pushing a mixed batch through one
    /// `DeltaQueue` and splitting the drained net delta by shard hash
    /// equals splitting the raw edits first and coalescing per shard.
    #[test]
    fn delta_queue_commutes_with_shard_split() {
        let shards = 4;
        // Deterministic pseudo-random edit stream with plenty of
        // repeats so coalescing actually fires.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let edits: Vec<FactEdit> = (0..400)
            .map(|_| {
                let a = format!("n{}", next() % 17);
                let b = format!("n{}", next() % 17);
                if next() % 2 == 0 {
                    FactEdit::add("edge", &[&a, &b])
                } else {
                    FactEdit::remove("edge", &[&a, &b])
                }
            })
            .collect();

        // Mixed queue, then split the net delta.
        let mut q = DeltaQueue::new();
        for e in &edits {
            q.push(e.clone());
        }
        let (net, _) = q.drain();
        let mixed_then_split = split_by_shard(&net, shards);

        // Split first, then per-shard queues.
        let mut split_then_net: Vec<Vec<FactEdit>> = Vec::new();
        for part in split_by_shard(&edits, shards) {
            let mut q = DeltaQueue::new();
            for e in part {
                q.push(e);
            }
            split_then_net.push(q.drain().0);
        }

        let key = |e: &FactEdit| {
            (
                e.pred_name().to_string(),
                e.arg_texts().to_vec(),
                matches!(e, FactEdit::Add { .. }),
            )
        };
        for s in 0..shards {
            assert_eq!(
                mixed_then_split[s].iter().map(key).collect::<Vec<_>>(),
                split_then_net[s].iter().map(key).collect::<Vec<_>>(),
                "shard {s} net delta (order included) must match"
            );
        }
    }
}

