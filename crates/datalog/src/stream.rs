//! Update coalescing for streams of base-table edits.
//!
//! A stream of k tiny updates pays k full DRed cascades if applied one at
//! a time. [`DeltaQueue`] merges queued edits into one *net* delta before
//! anything propagates: opposing insert/delete pairs on the same tuple
//! cancel, duplicate inserts (and deletes) dedupe, and what remains is
//! applied as a single [`crate::IncrementalEngine::update`] whose cost
//! tracks the true diff, not the raw change volume (cf. *Optimised
//! Maintenance of Datalog Materialisations*).
//!
//! Coalescing rules (set semantics make these exact, not heuristic):
//!
//! * With a **membership oracle** (the engine's own path,
//!   [`crate::IncrementalEngine::enqueue`]): the queue is kept as the exact
//!   diff against the live database. An edit that would restore a tuple's
//!   current membership *cancels* the queued opposing edit (both vanish);
//!   an edit that re-states the effective membership is *deduped*. Drained
//!   edits therefore never contain apply-time no-ops.
//! * **Oracle-free** ([`DeltaQueue::push`]): last-op-wins per tuple. A
//!   later opposing edit *supersedes* the queued one (counted as
//!   cancelled); a same-kind repeat dedupes. Correctness then rests on the
//!   engine's apply-time no-op detection — the final edit per tuple is
//!   exactly what a serial application would have left the base table
//!   with, so the net delta (and hence the materialization) is identical.
//!
//! Each drained-and-applied batch is also the stream's MVCC **publish
//! point**: a successful [`crate::IncrementalEngine::update`] publishes
//! one epoch, so snapshot readers observe whole coalesced batches —
//! never a half-applied net delta (see `engine::publish` and
//! `run_stream_committed`'s per-commit hook).

use crate::engine::FactEdit;
use incr_obs::registry;
use std::collections::HashMap;

/// Key identifying one base tuple in queue space (pre-interning).
type Key = (String, Vec<String>);

#[derive(Clone, Copy)]
struct Slot {
    /// Index into `order` that is allowed to emit this key on drain.
    pos: usize,
    adding: bool,
}

/// A queue of base-table edits that coalesces to the net delta.
///
/// Edits accumulate across any number of logical updates; [`Self::drain`]
/// yields one merged edit list (first-touch order preserved) that a single
/// engine update applies — one scheduler `start`, one cascade, for the
/// whole burst.
#[derive(Default)]
pub struct DeltaQueue {
    slots: HashMap<Key, Slot>,
    order: Vec<Key>,
    /// Logical updates absorbed since the last drain.
    updates: usize,
    /// Raw edits pushed since the last drain.
    edits_in: usize,
    cancelled: u64,
    deduped: u64,
}

impl DeltaQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pending net edits (tuples that still differ from the queue's view
    /// of the base state).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Logical updates absorbed since the last drain (see
    /// [`Self::end_update`]).
    pub fn updates_queued(&self) -> usize {
        self.updates
    }

    /// Raw edits pushed since the last drain.
    pub fn edits_queued(&self) -> usize {
        self.edits_in
    }

    /// Opposing insert/delete pairs annihilated (or superseded) so far.
    /// Each counted pair is two edits that will never propagate.
    pub fn cancelled_pairs(&self) -> u64 {
        self.cancelled
    }

    /// Edits dropped because they re-stated the queued/effective
    /// membership (duplicate inserts, duplicate deletes, exact no-ops).
    pub fn deduped(&self) -> u64 {
        self.deduped
    }

    /// Mark the end of one logical update's worth of pushes. Only
    /// bookkeeping — lets reports say "k updates coalesced into one".
    pub fn end_update(&mut self) {
        self.updates += 1;
    }

    /// Queue one edit with last-op-wins semantics (no membership oracle).
    pub fn push(&mut self, edit: FactEdit) {
        self.push_inner(edit, None);
    }

    /// Queue one edit given the tuple's *current* base-table membership
    /// (`present`). Keeps the queue as the exact diff against that state:
    /// restoring edits cancel, re-stating edits dedupe.
    pub fn push_with_presence(&mut self, edit: FactEdit, present: bool) {
        self.push_inner(edit, Some(present));
    }

    fn push_inner(&mut self, edit: FactEdit, present: Option<bool>) {
        self.edits_in += 1;
        let (pred, args, adding) = match edit {
            FactEdit::Add { pred, args } => (pred, args, true),
            FactEdit::Remove { pred, args } => (pred, args, false),
        };
        let key = (pred, args);
        match (self.slots.get(&key).copied(), present) {
            // Same desired state as the queued edit: duplicate.
            (Some(s), _) if s.adding == adding => {
                self.deduped += 1;
                registry().counter("datalog.coalesce.deduped").inc();
            }
            // Opposing edit with a known base state: the pair nets to
            // zero against the database — annihilate both.
            (Some(_), Some(_)) => {
                self.slots.remove(&key);
                self.cancelled += 1;
                registry().counter("datalog.coalesce.cancelled").inc();
            }
            // Opposing edit, membership unknown: the later op wins; the
            // queued one will never propagate.
            (Some(s), None) => {
                self.slots.insert(key, Slot { pos: s.pos, adding });
                self.cancelled += 1;
                registry().counter("datalog.coalesce.cancelled").inc();
            }
            // Fresh tuple, but the edit re-states current membership:
            // apply-time no-op, drop it here instead.
            (None, Some(p)) if p == adding => {
                self.deduped += 1;
                registry().counter("datalog.coalesce.deduped").inc();
            }
            // Fresh tuple with a real (or potentially real) change.
            (None, _) => {
                let pos = self.order.len();
                self.order.push(key.clone());
                self.slots.insert(key, Slot { pos, adding });
            }
        }
    }

    /// Drain the net delta as a flat edit list, first-touch order, and
    /// reset the per-burst bookkeeping (cumulative cancel/dedupe counters
    /// are preserved). Returns `(edits, updates_absorbed)`.
    pub fn drain(&mut self) -> (Vec<FactEdit>, usize) {
        let mut out = Vec::with_capacity(self.slots.len());
        for (pos, key) in self.order.iter().enumerate() {
            let Some(s) = self.slots.get(key) else {
                continue; // cancelled out
            };
            if s.pos != pos {
                continue; // re-queued later; that occurrence emits it
            }
            let (pred, args) = key.clone();
            out.push(if s.adding {
                FactEdit::Add { pred, args }
            } else {
                FactEdit::Remove { pred, args }
            });
        }
        let updates = self.updates;
        self.slots.clear();
        self.order.clear();
        self.updates = 0;
        self.edits_in = 0;
        (out, updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add(t: &str) -> FactEdit {
        FactEdit::add("e", &[t, t])
    }
    fn rem(t: &str) -> FactEdit {
        FactEdit::remove("e", &[t, t])
    }
    fn kinds(edits: &[FactEdit]) -> Vec<(bool, String)> {
        edits
            .iter()
            .map(|e| match e {
                FactEdit::Add { args, .. } => (true, args[0].clone()),
                FactEdit::Remove { args, .. } => (false, args[0].clone()),
            })
            .collect()
    }

    #[test]
    fn duplicate_inserts_dedupe() {
        let mut q = DeltaQueue::new();
        q.push(add("a"));
        q.push(add("a"));
        q.push(add("a"));
        assert_eq!(q.len(), 1);
        assert_eq!(q.deduped(), 2);
        let (edits, _) = q.drain();
        assert_eq!(kinds(&edits), vec![(true, "a".into())]);
    }

    #[test]
    fn opposing_pair_supersedes_without_oracle() {
        let mut q = DeltaQueue::new();
        q.push(add("a"));
        q.push(rem("a"));
        // Last op wins: the remove survives (apply-time no-op if "a" was
        // never present), the insert is gone.
        assert_eq!(q.cancelled_pairs(), 1);
        let (edits, _) = q.drain();
        assert_eq!(kinds(&edits), vec![(false, "a".into())]);
    }

    #[test]
    fn opposing_pair_annihilates_with_oracle() {
        let mut q = DeltaQueue::new();
        q.push_with_presence(add("a"), false);
        q.push_with_presence(rem("a"), false);
        assert_eq!(q.cancelled_pairs(), 1);
        assert!(q.is_empty());
        let (edits, _) = q.drain();
        assert!(edits.is_empty());
    }

    #[test]
    fn restating_membership_dedupes_with_oracle() {
        let mut q = DeltaQueue::new();
        q.push_with_presence(add("a"), true); // already present: no-op
        assert!(q.is_empty());
        assert_eq!(q.deduped(), 1);
        q.push_with_presence(rem("b"), false); // already absent: no-op
        assert!(q.is_empty());
        assert_eq!(q.deduped(), 2);
    }

    #[test]
    fn requeued_tuple_emits_at_later_position() {
        let mut q = DeltaQueue::new();
        q.push_with_presence(add("a"), false);
        q.push_with_presence(add("b"), false);
        q.push_with_presence(rem("a"), false); // cancels the first add
        q.push_with_presence(add("a"), false); // fresh entry, new position
        let (edits, _) = q.drain();
        assert_eq!(
            kinds(&edits),
            vec![(true, "b".into()), (true, "a".into())]
        );
    }

    #[test]
    fn drain_resets_burst_counters_not_totals() {
        let mut q = DeltaQueue::new();
        q.push(add("a"));
        q.push(add("a"));
        q.end_update();
        q.end_update();
        assert_eq!(q.updates_queued(), 2);
        assert_eq!(q.edits_queued(), 2);
        let (_, updates) = q.drain();
        assert_eq!(updates, 2);
        assert_eq!(q.updates_queued(), 0);
        assert_eq!(q.edits_queued(), 0);
        assert_eq!(q.deduped(), 1); // cumulative
        assert!(q.is_empty());
    }
}
