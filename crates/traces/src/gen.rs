//! The trace generator.
//!
//! Assembly plan for a [`TraceSpec`] (all deterministic in the seed):
//!
//! 1. **Spine** — a chain of exactly `levels` nodes pins the DAG's level
//!    count (Table I column 5).
//! 2. **Active components** — each dirtied component has a single root
//!    (a genuine source; these roots are the trace's *initial tasks*) and
//!    `width` nodes per deeper layer, every node anchored to the previous
//!    layer so the component's depth is exact; optional second parents add
//!    realistic fan-in.
//! 3. **Filler** — the remaining node/edge budget, made of chains (sparse
//!    remainder) or a two-layer bipartite block (dense remainder), so the
//!    published node and edge counts are matched *exactly*.
//! 4. **Firing calibration** — every edge gets a fixed uniform draw from
//!    the seed; an edge fires iff its draw is below a global threshold
//!    `q`. The activation closure is monotone in `q`, so a binary search
//!    lands the active-job count on the Table I target (within the
//!    granularity the draws allow).
//! 5. **Durations** — log-normal per task (see [`crate::durations`]).

use crate::spec::TraceSpec;
use incr_dag::{Dag, DagBuilder, NodeId};
use incr_sched::{Instance, TaskShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Generation outcome: the instance plus calibration diagnostics.
#[derive(Clone, Debug)]
pub struct GenReport {
    /// Fire threshold the calibration settled on.
    pub fire_threshold: f64,
    /// Achieved active-job count (target: `spec.active`).
    pub achieved_active: usize,
}

/// Generate the instance for `spec`. Panics on an infeasible spec (the
/// presets are all feasible; `TraceSpec::validate` catches most problems
/// up front).
pub fn generate(spec: &TraceSpec) -> (Instance, GenReport) {
    spec.validate().expect("invalid trace spec");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let n = spec.nodes as usize;
    let mut b = DagBuilder::with_edge_capacity(n, spec.edges as usize + 16);
    let mut edge_count: u64 = 0;
    let mut next: u32 = 0;
    let alloc = |count: u32, next: &mut u32| -> u32 {
        let base = *next;
        *next += count;
        assert!(*next as usize <= n, "node budget exceeded");
        base
    };

    // 1. Spine.
    let spine = alloc(spec.levels, &mut next);
    for i in 0..spec.levels.saturating_sub(1) {
        b.add_edge(NodeId(spine + i), NodeId(spine + i + 1));
        edge_count += 1;
    }

    // 2. Components.
    let mut initial: Vec<NodeId> = Vec::with_capacity(spec.initial as usize);
    // Per-component duration multipliers applied after sampling: record
    // each component's node range.
    let mut comp_ranges: Vec<(u32, u32)> = Vec::new();
    for class in &spec.classes {
        for _ in 0..class.count {
            let comp_start = next;
            let root = NodeId(alloc(1, &mut next));
            if class.dirty {
                initial.push(root);
            }
            let mut prev_layer: Vec<NodeId> = vec![root];
            let mut prev_prev: Vec<NodeId> = Vec::new();
            for _layer in 1..class.depth {
                let base = alloc(class.width, &mut next);
                let layer: Vec<NodeId> = (0..class.width).map(|i| NodeId(base + i)).collect();
                for &v in &layer {
                    // Anchor to the previous layer: depth is exact.
                    let anchor = prev_layer[rng.gen_range(0..prev_layer.len())];
                    b.add_edge(anchor, v);
                    edge_count += 1;
                    if rng.gen_bool(spec.second_parent) {
                        let pool = if !prev_prev.is_empty() && rng.gen_bool(0.5) {
                            &prev_prev
                        } else {
                            &prev_layer
                        };
                        let extra = pool[rng.gen_range(0..pool.len())];
                        if extra != anchor {
                            b.add_edge(extra, v);
                            edge_count += 1;
                        }
                    }
                }
                prev_prev = std::mem::replace(&mut prev_layer, layer);
            }
            comp_ranges.push((comp_start, next));
        }
    }
    assert_eq!(initial.len(), spec.initial as usize);

    // 3. Filler: exact node and edge budgets.
    let nodes_left = (n as u32) - next;
    let edges_left = (spec.edges as u64)
        .checked_sub(edge_count)
        .unwrap_or_else(|| {
            panic!(
                "{}: components already exceed edge budget ({edge_count} > {})",
                spec.name, spec.edges
            )
        });
    fill(&mut b, &mut next, nodes_left, edges_left, spec.levels, n);

    let dag: Arc<Dag> = Arc::new(b.build().expect("generated graph must be acyclic"));
    assert_eq!(dag.node_count(), n, "{}: node count", spec.name);
    assert_eq!(
        dag.edge_count(),
        spec.edges as usize,
        "{}: edge count (duplicate edges generated?)",
        spec.name
    );
    assert_eq!(
        dag.num_levels(),
        spec.levels,
        "{}: level count",
        spec.name
    );

    // 4. Firing calibration: binary-search the threshold.
    let draw = |u: NodeId, v: NodeId| edge_draw(spec.seed, u, v);
    let closure_size = |q: f64| -> usize {
        let mut seen = vec![false; n];
        let mut stack: Vec<NodeId> = initial.clone();
        for v in &initial {
            seen[v.index()] = true;
        }
        let mut count = 0usize;
        while let Some(u) = stack.pop() {
            count += 1;
            for &c in dag.children(u) {
                if !seen[c.index()] && draw(u, c) < q {
                    seen[c.index()] = true;
                    stack.push(c);
                }
            }
        }
        count
    };
    let target = spec.active as usize;
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    let mut best_q = 1.0;
    let mut best_diff = usize::MAX;
    for _ in 0..48 {
        let mid = (lo + hi) / 2.0;
        let size = closure_size(mid);
        let diff = size.abs_diff(target);
        if diff < best_diff {
            best_diff = diff;
            best_q = mid;
        }
        if size < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // The closure jumps in steps (whole firing cascades); take the better
    // endpoint of the final bracket too.
    for q in [lo, hi, 1.0] {
        let diff = closure_size(q).abs_diff(target);
        if diff < best_diff {
            best_diff = diff;
            best_q = q;
        }
    }
    let q = best_q;
    let achieved = closure_size(q);

    // 5. Materialize fired lists and durations.
    let mut fired: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for u in dag.nodes() {
        for &c in dag.children(u) {
            if draw(u, c) < q {
                fired[u.index()].push(c);
            }
        }
    }
    let mut durations = spec.duration.sample_vec(&mut rng, n);
    if spec.comp_scale_sigma > 0.0 {
        let sc = spec.comp_scale_sigma;
        for &(lo, hi) in &comp_ranges {
            let z = crate::durations::standard_normal(&mut rng);
            let mult = (sc * z - sc * sc / 2.0).exp();
            for d in &mut durations[lo as usize..hi as usize] {
                *d *= mult;
            }
        }
    }
    let shapes = vec![TaskShape::Unit; n];

    let inst = Instance {
        dag,
        durations,
        shapes,
        initial_active: initial,
        fired,
    };
    debug_assert!(inst.validate().is_ok());
    (
        inst,
        GenReport {
            fire_threshold: q,
            achieved_active: achieved,
        },
    )
}

/// Uniform draw in `[0, 1)` fixed by `(seed, u, v)` — splitmix64 finalizer.
fn edge_draw(seed: u64, u: NodeId, v: NodeId) -> f64 {
    let mut x = seed ^ (u.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (v.0 as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Emit filler consuming exactly `nodes` nodes and `edges` edges.
///
/// Sparse remainder (`edges < nodes`): chains capped at `levels` deep plus
/// singletons. Dense remainder: one two-layer bipartite block (capacity
/// `⌊b/2⌋·⌈b/2⌉` is ample for every preset).
fn fill(
    b: &mut DagBuilder,
    next: &mut u32,
    mut nodes: u32,
    mut edges: u64,
    levels: u32,
    total: usize,
) {
    let alloc = |count: u32, next: &mut u32| -> u32 {
        let base = *next;
        *next += count;
        assert!(*next as usize <= total, "filler exceeded node budget");
        base
    };
    if edges >= nodes as u64 && nodes >= 2 {
        // Dense: one bipartite block over all remaining nodes.
        let w1 = nodes / 2;
        let w2 = nodes - w1;
        let cap = w1 as u64 * w2 as u64;
        assert!(
            edges <= cap,
            "filler block cannot absorb {edges} edges over {nodes} nodes"
        );
        let base = alloc(nodes, next);
        let left = |i: u32| NodeId(base + i);
        let right = |j: u32| NodeId(base + w1 + j);
        'outer: for i in 0..w1 {
            for j in 0..w2 {
                if edges == 0 {
                    break 'outer;
                }
                b.add_edge(left(i), right(j));
                edges -= 1;
            }
        }
        return;
    }
    // Sparse: chains then singletons.
    while nodes > 0 {
        if edges == 0 {
            let _ = alloc(nodes, next); // singletons
            break;
        }
        let k = (edges + 1).min(nodes as u64).min(levels.max(2) as u64) as u32;
        let base = alloc(k, next);
        for i in 0..k - 1 {
            b.add_edge(NodeId(base + i), NodeId(base + i + 1));
        }
        nodes -= k;
        edges -= (k - 1) as u64;
    }
    assert_eq!(edges, 0, "filler could not place every edge");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{preset, presets};
    use crate::stats::trace_stats;

    /// Small smoke spec for fast unit tests (the full presets are covered
    /// by the slower integration tests / benches).
    fn small_spec() -> TraceSpec {
        TraceSpec {
            name: "small",
            id: 99,
            seed: 42,
            nodes: 600,
            edges: 900,
            initial: 4,
            active: 80,
            levels: 20,
            classes: vec![crate::spec::CompClass {
                count: 4,
                depth: 10,
                width: 3,
                dirty: true,
            }],
            second_parent: 0.5,
            comp_scale_sigma: 0.0,
            duration: crate::durations::DurationModel::new(1.0, 1.0),
            paper: Default::default(),
        }
    }

    #[test]
    fn exact_structure_counts() {
        let spec = small_spec();
        let (inst, _) = generate(&spec);
        assert_eq!(inst.dag.node_count(), 600);
        assert_eq!(inst.dag.edge_count(), 900);
        assert_eq!(inst.dag.num_levels(), 20);
        assert_eq!(inst.initial_active.len(), 4);
    }

    #[test]
    fn active_count_calibrated() {
        let spec = small_spec();
        let (inst, rep) = generate(&spec);
        let actual = inst.active_count();
        assert_eq!(actual, rep.achieved_active);
        let err = actual.abs_diff(80) as f64 / 80.0;
        assert!(err <= 0.1, "active {actual} vs target 80 (err {err:.2})");
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = small_spec();
        let (a, _) = generate(&spec);
        let (b, _) = generate(&spec);
        assert_eq!(a.initial_active, b.initial_active);
        assert_eq!(a.durations, b.durations);
        assert_eq!(
            a.dag.edges().collect::<Vec<_>>(),
            b.dag.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn initial_tasks_are_sources() {
        let (inst, _) = generate(&small_spec());
        for &v in &inst.initial_active {
            assert_eq!(inst.dag.in_degree(v), 0, "{v} is not a source");
        }
    }

    #[test]
    fn small_presets_match_table1_exactly() {
        // #5 is small enough for a unit test; the rest are exercised in
        // integration tests.
        let spec = preset(5);
        let (inst, rep) = generate(&spec);
        let st = trace_stats(&inst);
        assert_eq!(st.nodes, 1_719);
        assert_eq!(st.edges, 2_430);
        assert_eq!(st.initial_tasks, 6);
        assert_eq!(st.levels, 39);
        let err = rep.achieved_active.abs_diff(296) as f64 / 296.0;
        assert!(err <= 0.05, "active {} vs 296", rep.achieved_active);
    }

    #[test]
    fn shared_dag_pairs_have_identical_structure() {
        let (a, _) = generate(&preset(7));
        let (b, _) = generate(&preset(8));
        assert_eq!(
            a.dag.edges().collect::<Vec<_>>(),
            b.dag.edges().collect::<Vec<_>>()
        );
        assert_ne!(a.initial_active.len(), b.initial_active.len());
    }

    #[test]
    fn all_presets_validate_structurally() {
        for spec in presets() {
            spec.validate().unwrap();
        }
    }
}
