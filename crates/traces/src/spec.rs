//! Per-trace parameter sheets for the Table I corpus.
//!
//! Each spec records (a) the published Table I statistics, which the
//! generator matches exactly (nodes, edges, initial tasks, levels) or
//! within a small tolerance (active jobs — hit by calibrating the firing
//! probability), (b) the structural knobs (how the active pool is shaped
//! into dirtied components), (c) the duration calibration (mean + skew),
//! and (d) the paper's published scheduler measurements for side-by-side
//! reporting in EXPERIMENTS.md.
//!
//! Traces #7/#8 share a DAG and so do #9/#10 (visible in Table I: equal
//! node/edge/level counts): the presets encode that by sharing the
//! structural classes and seed while differing in which component class is
//! dirtied and in the duration scale.

use crate::durations::DurationModel;

/// One class of generated components.
#[derive(Clone, Copy, Debug)]
pub struct CompClass {
    /// Number of components of this class.
    pub count: u32,
    /// Depth in levels (a single root at the component's level 0, then
    /// `width` nodes per deeper level). Must not exceed the trace's level
    /// count.
    pub depth: u32,
    /// Nodes per non-root level.
    pub width: u32,
    /// Whether this class's roots are dirtied (become initial tasks).
    pub dirty: bool,
}

impl CompClass {
    /// Nodes per component: one root plus `(depth − 1) · width`.
    pub fn pool(&self) -> u32 {
        1 + (self.depth.saturating_sub(1)) * self.width
    }
}

/// The numbers the paper reports for this trace, for comparison tables.
/// `None` = not reported (Table II covers #1–#5, Table III covers #6–#11).
#[derive(Clone, Copy, Debug, Default)]
pub struct PaperNumbers {
    pub lbx_makespan: Option<f64>,
    pub lbx_overhead: Option<f64>,
    pub lb_makespan: Option<f64>,
    pub lb_overhead: Option<f64>,
    pub hybrid_makespan: Option<f64>,
    pub hybrid_overhead: Option<f64>,
    /// Table II LBL makespans for k = 5, 10, 15, 20.
    pub lbl: Option<[f64; 4]>,
}

/// Complete parameter sheet for one trace.
#[derive(Clone, Debug)]
pub struct TraceSpec {
    pub name: &'static str,
    /// Trace number (1–11) as in Table I.
    pub id: u32,
    pub seed: u64,
    // ---- Table I targets ----
    pub nodes: u32,
    pub edges: u32,
    pub initial: u32,
    pub active: u32,
    pub levels: u32,
    // ---- structure ----
    pub classes: Vec<CompClass>,
    /// Probability that a non-root component node gets a second parent.
    pub second_parent: f64,
    // ---- durations ----
    pub duration: DurationModel,
    /// Log-space sigma of a per-component duration multiplier
    /// (mean-normalized). Production predicates differ wildly in cost;
    /// a high value concentrates the work in a few components, which is
    /// what makes LevelBased's barrier harmless on traces like #8
    /// (everything waits for the one heavy chain anyway).
    pub comp_scale_sigma: f64,
    // ---- paper reference ----
    pub paper: PaperNumbers,
}

impl TraceSpec {
    /// Dirtied components (= Table I initial tasks).
    pub fn dirty_components(&self) -> u32 {
        self.classes
            .iter()
            .filter(|c| c.dirty)
            .map(|c| c.count)
            .sum()
    }

    /// Sanity-check internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.dirty_components() != self.initial {
            return Err(format!(
                "{}: dirty components {} != initial target {}",
                self.name,
                self.dirty_components(),
                self.initial
            ));
        }
        let comp_nodes: u64 = self
            .classes
            .iter()
            .map(|c| c.count as u64 * c.pool() as u64)
            .sum();
        if comp_nodes + self.levels as u64 > self.nodes as u64 {
            return Err(format!(
                "{}: components + spine ({}) exceed node budget {}",
                self.name,
                comp_nodes + self.levels as u64,
                self.nodes
            ));
        }
        for c in &self.classes {
            if c.depth > self.levels {
                return Err(format!("{}: component deeper than the DAG", self.name));
            }
            if c.depth == 0 || (c.depth > 1 && c.width == 0) {
                return Err(format!("{}: degenerate component class", self.name));
            }
        }
        let dirty_pool: u64 = self
            .classes
            .iter()
            .filter(|c| c.dirty)
            .map(|c| c.count as u64 * c.pool() as u64)
            .sum();
        if dirty_pool < self.active as u64 {
            return Err(format!(
                "{}: dirty pool {} cannot reach active target {}",
                self.name, dirty_pool, self.active
            ));
        }
        Ok(())
    }
}

/// All eleven presets, in Table I order.
pub fn presets() -> Vec<TraceSpec> {
    (1..=11).map(preset).collect()
}

/// The preset for trace `#id` (1–11).
pub fn preset(id: u32) -> TraceSpec {
    // Shared structural classes for the #7/#8 and #9/#10 DAG pairs.
    let classes_78 = |dirty_small: bool| {
        vec![
            CompClass {
                count: 9,
                depth: 32,
                width: 1,
                dirty: true,
            },
            CompClass {
                count: 67,
                depth: 6,
                width: 2,
                dirty: dirty_small,
            },
        ]
    };
    let classes_910 = |dirty_big: bool, dirty_small: bool| {
        vec![
            CompClass {
                count: 16,
                depth: 100,
                width: 2,
                dirty: dirty_big,
            },
            CompClass {
                count: 10,
                depth: 5,
                width: 4,
                dirty: dirty_small,
            },
        ]
    };
    match id {
        1 => TraceSpec {
            name: "#1",
            id,
            seed: 0x5EED_0001,
            nodes: 64_910,
            edges: 101_327,
            initial: 5,
            active: 532,
            levels: 171,
            classes: vec![CompClass {
                count: 5,
                depth: 35,
                width: 10,
                dirty: true,
            }],
            second_parent: 0.5,
            comp_scale_sigma: 0.0,
            duration: DurationModel::new(0.36, 1.0),
            paper: PaperNumbers {
                lbx_makespan: Some(26.5),
                lb_makespan: Some(57.74),
                lbl: Some([36.72, 33.09, 31.25, 30.99]),
                ..Default::default()
            },
        },
        2 => TraceSpec {
            name: "#2",
            id,
            seed: 0x5EED_0002,
            nodes: 64_903,
            edges: 101_319,
            initial: 16,
            active: 1_936,
            levels: 171,
            classes: vec![CompClass {
                count: 16,
                depth: 70,
                width: 2,
                dirty: true,
            }],
            second_parent: 0.5,
            comp_scale_sigma: 0.0,
            duration: DurationModel::new(36.2, 1.3),
            paper: PaperNumbers {
                lbx_makespan: Some(9_736.0),
                lb_makespan: Some(20_979.3),
                lbl: Some([11_906.9, 9_846.16, 9_866.64, 9_860.42]),
                ..Default::default()
            },
        },
        3 => TraceSpec {
            name: "#3",
            id,
            seed: 0x5EED_0003,
            nodes: 29_185,
            edges: 41_506,
            initial: 76,
            active: 560,
            levels: 149,
            classes: vec![CompClass {
                count: 76,
                depth: 20,
                width: 1,
                dirty: true,
            }],
            second_parent: 0.5,
            comp_scale_sigma: 0.0,
            duration: DurationModel::new(1.95, 1.3),
            paper: PaperNumbers {
                lbx_makespan: Some(187.0),
                lb_makespan: Some(448.40),
                lbl: Some([299.34, 285.91, 230.22, 229.34]),
                ..Default::default()
            },
        },
        4 => TraceSpec {
            name: "#4",
            id,
            seed: 0x5EED_0004,
            nodes: 64_507,
            edges: 100_779,
            initial: 26,
            active: 1_342,
            levels: 171,
            classes: vec![CompClass {
                count: 26,
                depth: 60,
                width: 1,
                dirty: true,
            }],
            second_parent: 0.5,
            comp_scale_sigma: 0.0,
            duration: DurationModel::new(1.82, 1.3),
            paper: PaperNumbers {
                lbx_makespan: Some(303.0),
                lb_makespan: Some(866.66),
                lbl: Some([576.49, 490.15, 444.67, 426.22]),
                ..Default::default()
            },
        },
        5 => TraceSpec {
            name: "#5",
            id,
            seed: 0x5EED_0005,
            nodes: 1_719,
            edges: 2_430,
            initial: 6,
            active: 296,
            levels: 39,
            classes: vec![CompClass {
                count: 6,
                depth: 13,
                width: 5,
                dirty: true,
            }],
            second_parent: 0.5,
            comp_scale_sigma: 0.0,
            duration: DurationModel::new(0.56, 0.6),
            paper: PaperNumbers {
                lbx_makespan: Some(23.0),
                lb_makespan: Some(29.32),
                lbl: Some([24.52, 24.52, 24.52, 24.52]),
                ..Default::default()
            },
        },
        6 => TraceSpec {
            name: "#6",
            id,
            seed: 0x5EED_0006,
            nodes: 379_500,
            edges: 557_702,
            initial: 125_544,
            active: 126_979,
            levels: 11,
            classes: vec![CompClass {
                count: 125_544,
                depth: 3,
                width: 1,
                dirty: true,
            }],
            second_parent: 0.9,
            comp_scale_sigma: 0.0,
            duration: DurationModel::new(29e-6, 0.8),
            paper: PaperNumbers {
                lbx_makespan: Some(33.24),
                lbx_overhead: Some(21.69),
                lb_makespan: Some(0.49),
                lb_overhead: Some(0.027),
                hybrid_makespan: Some(21.93),
                hybrid_overhead: Some(10.89),
                ..Default::default()
            },
        },
        7 => TraceSpec {
            name: "#7",
            id,
            seed: 0x5EED_0007,
            nodes: 35_283,
            edges: 50_511,
            initial: 76,
            active: 645,
            levels: 198,
            classes: classes_78(true),
            second_parent: 0.5,
            comp_scale_sigma: 0.0,
            duration: DurationModel::new(1.6, 1.3),
            paper: PaperNumbers {
                lbx_makespan: Some(155.77),
                lbx_overhead: Some(0.109),
                lb_makespan: Some(348.35),
                lb_overhead: Some(0.038e-3),
                hybrid_makespan: Some(187.08),
                hybrid_overhead: Some(0.077),
                ..Default::default()
            },
        },
        8 => TraceSpec {
            name: "#8",
            id,
            seed: 0x5EED_0007, // same DAG as #7
            nodes: 35_283,
            edges: 50_511,
            initial: 9,
            active: 177,
            levels: 198,
            classes: classes_78(false),
            second_parent: 0.5,
            comp_scale_sigma: 2.0,
            duration: DurationModel::new(1.5, 0.4),
            paper: PaperNumbers {
                lbx_makespan: Some(28.69),
                lbx_overhead: Some(0.022),
                lb_makespan: Some(28.29),
                lb_overhead: Some(0.009e-3),
                hybrid_makespan: Some(25.52),
                hybrid_overhead: Some(0.020),
                ..Default::default()
            },
        },
        9 => TraceSpec {
            name: "#9",
            id,
            seed: 0x5EED_0009, // same DAG as #10
            nodes: 65_541,
            edges: 102_219,
            initial: 10,
            active: 111,
            levels: 171,
            classes: classes_910(false, true),
            second_parent: 0.5,
            comp_scale_sigma: 0.8,
            duration: DurationModel::new(0.82e-3, 0.6),
            paper: PaperNumbers {
                lbx_makespan: Some(0.048),
                lbx_overhead: Some(0.0107),
                lb_makespan: Some(0.037),
                lb_overhead: Some(0.013e-3),
                hybrid_makespan: Some(0.041),
                hybrid_overhead: Some(0.009),
                ..Default::default()
            },
        },
        10 => TraceSpec {
            name: "#10",
            id,
            seed: 0x5EED_0009,
            nodes: 65_541,
            edges: 102_219,
            initial: 16,
            active: 1_936,
            levels: 171,
            classes: classes_910(true, false),
            second_parent: 0.5,
            comp_scale_sigma: 0.0,
            duration: DurationModel::new(36.8, 1.2),
            paper: PaperNumbers {
                lbx_makespan: Some(9_893.29),
                lbx_overhead: Some(0.327),
                lb_makespan: Some(20_897.9),
                lb_overhead: Some(0.159e-3),
                hybrid_makespan: Some(10_123.74),
                hybrid_overhead: Some(0.289),
                ..Default::default()
            },
        },
        11 => TraceSpec {
            name: "#11",
            id,
            seed: 0x5EED_0011,
            nodes: 465_127,
            edges: 465_158,
            initial: 131_104,
            active: 132_162,
            levels: 5,
            classes: vec![CompClass {
                count: 131_104,
                depth: 3,
                width: 1,
                dirty: true,
            }],
            second_parent: 0.0,
            comp_scale_sigma: 0.0,
            duration: DurationModel::new(39.9e-3, 0.8),
            paper: PaperNumbers {
                lbx_makespan: Some(688.38),
                lbx_overhead: Some(21.03),
                lb_makespan: Some(694.24),
                lb_overhead: Some(0.042),
                hybrid_makespan: Some(630.01),
                hybrid_overhead: Some(7.47),
                ..Default::default()
            },
        },
        other => panic!("no preset for trace #{other} (valid: 1-11)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for spec in presets() {
            spec.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn pairs_share_structure() {
        let (a, b) = (preset(7), preset(8));
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.levels, b.levels);
        let (c, d) = (preset(9), preset(10));
        assert_eq!(c.seed, d.seed);
        assert_eq!(c.nodes, d.nodes);
    }

    #[test]
    fn initial_counts_match_table1() {
        let expected = [5, 16, 76, 26, 6, 125_544, 76, 9, 10, 16, 131_104];
        for (i, spec) in presets().iter().enumerate() {
            assert_eq!(spec.initial as usize, expected[i] as usize, "{}", spec.name);
        }
    }

    #[test]
    fn pool_formula() {
        let c = CompClass {
            count: 1,
            depth: 5,
            width: 3,
            dirty: false,
        };
        assert_eq!(c.pool(), 1 + 4 * 3);
        let root_only = CompClass {
            count: 1,
            depth: 1,
            width: 0,
            dirty: false,
        };
        assert_eq!(root_only.pool(), 1);
    }

    #[test]
    #[should_panic(expected = "no preset")]
    fn unknown_preset_panics() {
        preset(12);
    }
}
