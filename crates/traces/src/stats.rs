//! Table I statistics and the Figure 1 descendant census, recomputed from
//! any instance.

use incr_dag::reach;
use incr_sched::Instance;

/// The columns of Table I, plus the Figure 1 census.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceStats {
    pub nodes: usize,
    pub edges: usize,
    pub initial_tasks: usize,
    pub active_jobs: usize,
    pub levels: u32,
    /// Figure 1: every node that *could* be affected by the update.
    pub total_descendants: usize,
    /// Figure 1: how many of those actually activate.
    pub activated_descendants: usize,
    /// Width of the widest level (shallow-trace diagnostics).
    pub max_level_width: usize,
}

/// Compute all statistics for `inst`.
pub fn trace_stats(inst: &Instance) -> TraceStats {
    let active = inst.active_closure();
    let census = reach::descendant_census(
        &inst.dag,
        inst.initial_active.iter().copied(),
        &active,
    );
    TraceStats {
        nodes: inst.dag.node_count(),
        edges: inst.dag.edge_count(),
        initial_tasks: inst.initial_active.len(),
        active_jobs: active.len(),
        levels: inst.dag.num_levels(),
        total_descendants: census.total_descendants,
        activated_descendants: census.activated_descendants,
        max_level_width: incr_dag::levels::max_level_width(&inst.dag),
    }
}

/// Render a Table-I style row.
pub fn format_row(name: &str, s: &TraceStats) -> String {
    format!(
        "{:<6} {:>8} {:>8} {:>9} {:>8} {:>7} {:>10} {:>10}",
        name,
        s.nodes,
        s.edges,
        s.initial_tasks,
        s.active_jobs,
        s.levels,
        s.total_descendants,
        s.activated_descendants
    )
}

/// Header matching [`format_row`].
pub fn header() -> String {
    format!(
        "{:<6} {:>8} {:>8} {:>9} {:>8} {:>7} {:>10} {:>10}",
        "trace", "nodes", "edges", "initial", "active", "levels", "desc.pool", "desc.act"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use incr_dag::{DagBuilder, NodeId};
    use std::sync::Arc;

    fn tiny() -> Instance {
        // 0 -> 1 -> 2, 0 -> 3; fire only 0->1.
        let mut b = DagBuilder::new(4);
        for (u, v) in [(0, 1), (1, 2), (0, 3)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        let mut inst = Instance::unit(Arc::new(b.build().unwrap()), vec![NodeId(0)]);
        inst.fired[0] = vec![NodeId(1)];
        inst
    }

    #[test]
    fn stats_are_consistent() {
        let s = trace_stats(&tiny());
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 3);
        assert_eq!(s.initial_tasks, 1);
        assert_eq!(s.active_jobs, 2); // 0 and 1
        assert_eq!(s.levels, 3);
        assert_eq!(s.total_descendants, 3); // 1, 2, 3
        assert_eq!(s.activated_descendants, 1); // only 1
        assert_eq!(s.max_level_width, 2);
    }

    #[test]
    fn row_formatting_includes_all_fields() {
        let s = trace_stats(&tiny());
        let row = format_row("#t", &s);
        for needle in ["#t", "4", "3", "1", "2"] {
            assert!(row.contains(needle), "row {row:?} missing {needle}");
        }
        assert_eq!(header().split_whitespace().count(), 8);
    }
}
