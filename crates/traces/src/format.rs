//! Versioned JSON trace files — the stand-in for the paper's proprietary
//! job-trace format.
//!
//! "The traces contain information about the structure of the scheduling
//! DAG, supplemented by information about each task, such as the task
//! processing time" (§VI-A). A [`JobTrace`] carries exactly that: the edge
//! list, per-task durations (microseconds, for lossless round-tripping)
//! and shapes, the initially-dirty tasks, and the fired-edge lists that
//! replay the activation behaviour.

use incr_dag::{Dag, DagBuilder, NodeId};
use incr_obs::json::{obj, Json, JsonError};
use incr_sched::{Instance, TaskShape};
use std::sync::Arc;

/// Current format version; bump on incompatible schema changes.
pub const FORMAT_VERSION: u32 = 1;

/// Serializable task shape (mirror of [`TaskShape`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShapeSpec {
    Unit,
    Parallel { work: u32 },
    Chain { len: u32 },
    WorkSpan { work: u32, span: u32 },
}

impl From<TaskShape> for ShapeSpec {
    fn from(s: TaskShape) -> Self {
        match s {
            TaskShape::Unit => ShapeSpec::Unit,
            TaskShape::Parallel { work } => ShapeSpec::Parallel { work },
            TaskShape::Chain { len } => ShapeSpec::Chain { len },
            TaskShape::WorkSpan { work, span } => ShapeSpec::WorkSpan { work, span },
        }
    }
}

impl From<ShapeSpec> for TaskShape {
    fn from(s: ShapeSpec) -> Self {
        match s {
            ShapeSpec::Unit => TaskShape::Unit,
            ShapeSpec::Parallel { work } => TaskShape::Parallel { work },
            ShapeSpec::Chain { len } => TaskShape::Chain { len },
            ShapeSpec::WorkSpan { work, span } => TaskShape::WorkSpan { work, span },
        }
    }
}

impl ShapeSpec {
    /// Tagged-object encoding: `{"kind": "unit"}`,
    /// `{"kind": "parallel", "work": 8}`, …
    fn to_value(self) -> Json {
        match self {
            ShapeSpec::Unit => obj([("kind", "unit".into())]),
            ShapeSpec::Parallel { work } => {
                obj([("kind", "parallel".into()), ("work", work.into())])
            }
            ShapeSpec::Chain { len } => obj([("kind", "chain".into()), ("len", len.into())]),
            ShapeSpec::WorkSpan { work, span } => obj([
                ("kind", "work_span".into()),
                ("work", work.into()),
                ("span", span.into()),
            ]),
        }
    }

    fn from_value(v: &Json) -> Result<ShapeSpec, String> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("shape missing kind")?;
        let field = |name: &str| -> Result<u32, String> {
            v.get(name)
                .and_then(Json::as_u64)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("shape {kind:?} missing field {name:?}"))
        };
        match kind {
            "unit" => Ok(ShapeSpec::Unit),
            "parallel" => Ok(ShapeSpec::Parallel { work: field("work")? }),
            "chain" => Ok(ShapeSpec::Chain { len: field("len")? }),
            "work_span" => Ok(ShapeSpec::WorkSpan {
                work: field("work")?,
                span: field("span")?,
            }),
            other => Err(format!("unknown shape kind {other:?}")),
        }
    }
}

/// A complete, serializable job trace.
#[derive(Clone, Debug)]
pub struct JobTrace {
    pub version: u32,
    pub name: String,
    pub node_count: u32,
    /// Edge list `(u, v)`.
    pub edges: Vec<(u32, u32)>,
    /// Per-task processing time in microseconds.
    pub durations_us: Vec<u64>,
    /// Per-task internal shape (omitted entries default to `Unit`).
    pub shapes: Vec<ShapeSpec>,
    /// Initially-dirty tasks.
    pub initial: Vec<u32>,
    /// `fired[v]` = children activated when `v` executes.
    pub fired: Vec<Vec<u32>>,
}

/// Errors loading a trace.
#[derive(Debug)]
pub enum TraceError {
    Json(JsonError),
    /// JSON parsed but does not have the JobTrace structure.
    Schema(String),
    Version {
        found: u32,
        expected: u32,
    },
    Graph(incr_dag::DagError),
    Shape(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Json(e) => write!(f, "trace JSON error: {e}"),
            TraceError::Schema(e) => write!(f, "trace schema error: {e}"),
            TraceError::Version { found, expected } => {
                write!(f, "trace format version {found}, expected {expected}")
            }
            TraceError::Graph(e) => write!(f, "trace graph invalid: {e}"),
            TraceError::Shape(e) => write!(f, "trace malformed: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

fn u32_field(doc: &Json, name: &str) -> Result<u32, TraceError> {
    doc.get(name)
        .and_then(Json::as_u64)
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| TraceError::Schema(format!("missing u32 field {name:?}")))
}

fn u32_array(v: &Json, what: &str) -> Result<Vec<u32>, TraceError> {
    v.as_arr()
        .ok_or_else(|| TraceError::Schema(format!("{what} is not an array")))?
        .iter()
        .map(|e| {
            e.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| TraceError::Schema(format!("{what} entry is not a u32")))
        })
        .collect()
}

fn arr_field<'a>(doc: &'a Json, name: &str) -> Result<&'a [Json], TraceError> {
    doc.get(name)
        .and_then(Json::as_arr)
        .ok_or_else(|| TraceError::Schema(format!("missing array field {name:?}")))
}

impl JobTrace {
    /// Capture an instance into the serializable form.
    pub fn from_instance(name: &str, inst: &Instance) -> JobTrace {
        JobTrace {
            version: FORMAT_VERSION,
            name: name.to_string(),
            node_count: inst.dag.node_count() as u32,
            edges: inst.dag.edges().map(|(u, v)| (u.0, v.0)).collect(),
            durations_us: inst
                .durations
                .iter()
                .map(|d| (d * 1e6).round() as u64)
                .collect(),
            shapes: inst.shapes.iter().map(|&s| s.into()).collect(),
            initial: inst.initial_active.iter().map(|v| v.0).collect(),
            fired: inst
                .fired
                .iter()
                .map(|fs| fs.iter().map(|v| v.0).collect())
                .collect(),
        }
    }

    /// Rebuild the executable instance.
    pub fn to_instance(&self) -> Result<Instance, TraceError> {
        if self.version != FORMAT_VERSION {
            return Err(TraceError::Version {
                found: self.version,
                expected: FORMAT_VERSION,
            });
        }
        let n = self.node_count as usize;
        if self.durations_us.len() != n || self.shapes.len() != n || self.fired.len() != n {
            return Err(TraceError::Shape(format!(
                "side tables ({}, {}, {}) do not match node count {}",
                self.durations_us.len(),
                self.shapes.len(),
                self.fired.len(),
                n
            )));
        }
        let mut b = DagBuilder::with_edge_capacity(n, self.edges.len());
        for &(u, v) in &self.edges {
            b.add_edge(NodeId(u), NodeId(v));
        }
        let dag: Arc<Dag> = Arc::new(b.build().map_err(TraceError::Graph)?);
        let inst = Instance {
            dag,
            durations: self.durations_us.iter().map(|&us| us as f64 / 1e6).collect(),
            shapes: self.shapes.iter().map(|&s| s.into()).collect(),
            initial_active: self.initial.iter().map(|&v| NodeId(v)).collect(),
            fired: self
                .fired
                .iter()
                .map(|fs| fs.iter().map(|&v| NodeId(v)).collect())
                .collect(),
        };
        inst.validate().map_err(TraceError::Shape)?;
        Ok(inst)
    }

    /// The JSON document form.
    pub fn to_value(&self) -> Json {
        obj([
            ("version", self.version.into()),
            ("name", self.name.clone().into()),
            ("node_count", self.node_count.into()),
            (
                "edges",
                Json::Arr(
                    self.edges
                        .iter()
                        .map(|&(u, v)| Json::Arr(vec![u.into(), v.into()]))
                        .collect(),
                ),
            ),
            (
                "durations_us",
                Json::Arr(self.durations_us.iter().map(|&d| d.into()).collect()),
            ),
            (
                "shapes",
                Json::Arr(self.shapes.iter().map(|s| s.to_value()).collect()),
            ),
            (
                "initial",
                Json::Arr(self.initial.iter().map(|&v| v.into()).collect()),
            ),
            (
                "fired",
                Json::Arr(
                    self.fired
                        .iter()
                        .map(|fs| Json::Arr(fs.iter().map(|&v| v.into()).collect()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuild from the JSON document form.
    pub fn from_value(doc: &Json) -> Result<JobTrace, TraceError> {
        let version = u32_field(doc, "version")?;
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| TraceError::Schema("missing string field \"name\"".into()))?
            .to_string();
        let node_count = u32_field(doc, "node_count")?;
        let edges = arr_field(doc, "edges")?
            .iter()
            .map(|e| {
                let pair = u32_array(e, "edge")?;
                match pair[..] {
                    [u, v] => Ok((u, v)),
                    _ => Err(TraceError::Schema("edge is not a pair".into())),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        let durations_us = arr_field(doc, "durations_us")?
            .iter()
            .map(|d| {
                d.as_u64()
                    .ok_or_else(|| TraceError::Schema("duration is not a u64".into()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let shapes = arr_field(doc, "shapes")?
            .iter()
            .map(|s| ShapeSpec::from_value(s).map_err(TraceError::Schema))
            .collect::<Result<Vec<_>, _>>()?;
        let initial = u32_array(
            doc.get("initial")
                .ok_or_else(|| TraceError::Schema("missing array field \"initial\"".into()))?,
            "initial",
        )?;
        let fired = arr_field(doc, "fired")?
            .iter()
            .map(|fs| u32_array(fs, "fired"))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(JobTrace {
            version,
            name,
            node_count,
            edges,
            durations_us,
            shapes,
            initial,
            fired,
        })
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<JobTrace, TraceError> {
        let doc = Json::parse(s).map_err(TraceError::Json)?;
        JobTrace::from_value(&doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instance() -> Instance {
        let mut b = DagBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        let mut inst = Instance::unit(Arc::new(b.build().unwrap()), vec![NodeId(0)]);
        inst.durations = vec![0.5, 1.25, 2.0];
        inst.shapes = vec![
            TaskShape::Unit,
            TaskShape::Chain { len: 3 },
            TaskShape::WorkSpan { work: 8, span: 2 },
        ];
        inst.fired[0] = vec![NodeId(1)];
        inst
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let inst = sample_instance();
        let t = JobTrace::from_instance("rt", &inst);
        let json = t.to_json();
        let t2 = JobTrace::from_json(&json).unwrap();
        let inst2 = t2.to_instance().unwrap();
        assert_eq!(inst2.dag.node_count(), 3);
        assert_eq!(inst2.durations, inst.durations);
        assert_eq!(inst2.shapes, inst.shapes);
        assert_eq!(inst2.initial_active, inst.initial_active);
        assert_eq!(inst2.fired, inst.fired);
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut t = JobTrace::from_instance("v", &sample_instance());
        t.version = 999;
        assert!(matches!(
            t.to_instance(),
            Err(TraceError::Version { found: 999, .. })
        ));
    }

    #[test]
    fn cyclic_trace_rejected() {
        let mut t = JobTrace::from_instance("c", &sample_instance());
        t.edges.push((2, 0));
        assert!(matches!(t.to_instance(), Err(TraceError::Graph(_))));
    }

    #[test]
    fn mismatched_tables_rejected() {
        let mut t = JobTrace::from_instance("m", &sample_instance());
        t.durations_us.pop();
        assert!(matches!(t.to_instance(), Err(TraceError::Shape(_))));
    }

    #[test]
    fn invalid_fired_edge_rejected() {
        let mut t = JobTrace::from_instance("f", &sample_instance());
        t.fired[0] = vec![2]; // 0 -> 2 is not an edge
        assert!(matches!(t.to_instance(), Err(TraceError::Shape(_))));
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(matches!(
            JobTrace::from_json("{not json"),
            Err(TraceError::Json(_))
        ));
        assert!(matches!(
            JobTrace::from_json("{\"version\": 1}"),
            Err(TraceError::Schema(_))
        ));
    }
}
