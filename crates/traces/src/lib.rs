//! # incr-traces — the job-trace corpus
//!
//! The paper evaluates on eleven job traces: ten proprietary production
//! workloads from LogicBlox plus one synthetic instance (Table I). The
//! proprietary traces were never released, so this crate *regenerates* a
//! corpus whose every published statistic matches Table I — node count,
//! edge count, number of initial (dirtied) tasks, number of active jobs,
//! and number of levels — plus task-duration distributions calibrated so
//! the simulated baseline makespans land near the published totals
//! (Tables II/III). See DESIGN.md §2 for the substitution argument.
//!
//! * [`spec`] — the per-trace parameter sheets (`#1`–`#11`).
//! * [`gen`] — the generator: a spine chain pins the level count, dirtied
//!   "active components" carry the incremental update, filler components
//!   make up the node/edge budget exactly, and the firing probability is
//!   binary-searched so the activation closure hits the published active
//!   count.
//! * [`durations`] — log-normal task durations (heavy-tailed, as
//!   production task times are).
//! * [`stats`] — recompute the Table I columns from any instance
//!   (plus the Figure 1 descendant census).
//! * [`adversarial`] — the pathological instances: the Figure 2 tight
//!   example, the LogicBlox `O(n³)` scan blow-up, the interval-list
//!   `O(V²)` space blow-up, and the "100×" anecdote instance (§VI).
//! * [`format`](mod@format) — versioned JSON serialization of instances, standing in
//!   for the paper's trace files.

pub mod adversarial;
pub mod durations;
pub mod format;
pub mod gen;
pub mod spec;
pub mod stats;

pub use format::JobTrace;
pub use gen::generate;
pub use spec::{preset, presets, TraceSpec};
pub use stats::{trace_stats, TraceStats};
