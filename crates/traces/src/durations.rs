//! Heavy-tailed task durations.
//!
//! Production task times are strongly skewed (most predicates re-evaluate
//! in microseconds; a few fix-point computations dominate). We model them
//! as log-normal: `exp(mu + sigma * Z)`. The generator chooses `mu` so
//! the mean matches the per-trace calibration target and `sigma` sets the
//! straggler weight — the knob behind the LevelBased barrier penalty
//! observed in Table II.

use rand::Rng;

/// Log-normal duration model.
#[derive(Clone, Copy, Debug)]
pub struct DurationModel {
    /// Mean duration in seconds (of the distribution, not the median).
    pub mean: f64,
    /// Log-space standard deviation (0 = deterministic durations).
    pub sigma: f64,
}

impl DurationModel {
    /// Model with the given mean and skew.
    pub fn new(mean: f64, sigma: f64) -> Self {
        assert!(mean > 0.0 && sigma >= 0.0);
        DurationModel { mean, sigma }
    }

    /// `mu` in log space such that `E[exp(mu + sigma Z)] = mean`.
    fn mu(&self) -> f64 {
        self.mean.ln() - self.sigma * self.sigma / 2.0
    }

    /// Sample one duration.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        if self.sigma == 0.0 {
            return self.mean;
        }
        let z = standard_normal(rng);
        (self.mu() + self.sigma * z).exp()
    }

    /// Sample `n` durations.
    pub fn sample_vec(&self, rng: &mut impl Rng, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Standard normal via Box–Muller (the `rand` crate ships only uniform
/// sources in our offline set; `rand_distr` is not vendored).
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_is_calibrated() {
        let m = DurationModel::new(2.0, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let avg: f64 = (0..n).map(|_| m.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (avg - 2.0).abs() < 0.08,
            "sample mean {avg} far from target 2.0"
        );
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let m = DurationModel::new(0.5, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(m.sample(&mut rng), 0.5);
    }

    #[test]
    fn samples_are_positive() {
        let m = DurationModel::new(1e-6, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for d in m.sample_vec(&mut rng, 10_000) {
            assert!(d > 0.0);
        }
    }

    #[test]
    fn higher_sigma_means_heavier_tail() {
        let mut rng = StdRng::seed_from_u64(11);
        let light = DurationModel::new(1.0, 0.3);
        let heavy = DurationModel::new(1.0, 1.8);
        let max_light = light
            .sample_vec(&mut rng, 20_000)
            .into_iter()
            .fold(0.0f64, f64::max);
        let max_heavy = heavy
            .sample_vec(&mut rng, 20_000)
            .into_iter()
            .fold(0.0f64, f64::max);
        assert!(max_heavy > 3.0 * max_light);
    }

    #[test]
    fn normal_is_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
