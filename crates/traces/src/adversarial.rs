//! Pathological instances from the paper's analysis sections.
//!
//! * [`figure2`] — the Theorem 9 tight example where LevelBased is
//!   `Θ(ML)` against an optimal `Θ(M + L)`.
//! * [`lbx_cubic`] — drives the LogicBlox scheduler to its `Θ(n³)`
//!   scheduling-cost worst case (§II-C).
//! * [`interval_blowup`] — drives the interval-list preprocessing to its
//!   `Θ(V²)` space worst case (§II-C).
//! * [`hundred_x`] — a synthetic instance in the spirit of §VI's anecdote
//!   ("we even managed to design a synthetic instance on which the hybrid
//!   scheduler was performing 100× faster than the LogicBlox scheduler"):
//!   shallow, wide, with a huge active queue that makes the scan the
//!   bottleneck while LevelBased dispatches in O(1).

use incr_dag::{Dag, DagBuilder, NodeId};
use incr_sched::{Instance, TaskShape};
use std::sync::Arc;

/// The Figure 2 tight example with `l` levels.
///
/// Unit tasks `j_1 … j_l` form a chain; for `i = 2 … l` a task `k_i`
/// depends on `j_{i-1}` and has work *and span* `l - i + 1` (a sequential
/// chain, no internal parallelism). Everything activates. LevelBased
/// waits for each `k_i` to finish before advancing past level `i`, giving
/// makespan `Θ(l²)`; a scheduler with exact readiness runs each `k_i` on
/// its own processor for `Θ(l + M)` total (Theorem 9, `M = max span = l - 1`).
pub fn figure2(l: u32) -> Instance {
    assert!(l >= 2, "the example needs at least two levels");
    // Nodes: j_1..j_l are 0..l-1 ; k_i (i=2..=l) are l..2l-2.
    let n = (2 * l - 1) as usize;
    let mut b = DagBuilder::new(n);
    let j = |i: u32| NodeId(i - 1); // j_i, i in 1..=l
    let k = |i: u32| NodeId(l + i - 2); // k_i, i in 2..=l
    for i in 2..=l {
        b.add_edge(j(i - 1), j(i));
        b.add_edge(j(i - 1), k(i));
    }
    let dag: Arc<Dag> = Arc::new(b.build().unwrap());
    let mut inst = Instance::unit(dag, vec![j(1)]);
    for i in 2..=l {
        inst.fired[j(i - 1).index()] = vec![j(i), k(i)];
        inst.shapes[k(i).index()] = TaskShape::Chain { len: l - i + 1 };
        // Durations mirror the shapes for the event simulator.
        inst.durations[k(i).index()] = (l - i + 1) as f64;
    }
    debug_assert!(inst.validate().is_ok());
    inst
}

/// `Θ(n³)` scheduling cost for the LogicBlox scan.
///
/// A source fans out to `n` children that also form a chain: when the
/// source completes, all `n` children are active but only the chain head
/// is safe. Every completion triggers a rescan of the whole active queue,
/// and every candidate check walks the whole blocker set: `n` scans ×
/// `n` candidates × `Θ(n)` blockers.
pub fn lbx_cubic(n: u32) -> Instance {
    assert!(n >= 1);
    let mut b = DagBuilder::new(n as usize + 1);
    let c = |i: u32| NodeId(1 + i); // c_0..c_{n-1}
    for i in 0..n {
        b.add_edge(NodeId(0), c(i));
        if i + 1 < n {
            b.add_edge(c(i), c(i + 1));
        }
    }
    let dag: Arc<Dag> = Arc::new(b.build().unwrap());
    let mut inst = Instance::unit(dag, vec![NodeId(0)]);
    inst.fired[0] = (0..n).map(c).collect();
    // The chain itself need not re-fire (children already active).
    debug_assert!(inst.validate().is_ok());
    inst
}

/// `Θ(k²)` interval-list space: source 0 covers every sink, pinning sink
/// postorders contiguously; each other source covers only even-indexed
/// sinks, whose postorders are pairwise non-adjacent — `Θ(k)` intervals
/// per source.
pub fn interval_blowup(k: u32) -> Arc<Dag> {
    let mut b = DagBuilder::new((2 * k) as usize);
    for j in 0..k {
        b.add_edge(NodeId(0), NodeId(k + j));
    }
    for i in 1..k {
        for j in (0..k).step_by(2) {
            b.add_edge(NodeId(i), NodeId(k + j));
        }
    }
    Arc::new(b.build().unwrap())
}

/// The "100×" anecdote instance: `n` independent microsecond point
/// updates, all dirty at once (a bulk of single-predicate edits). Every
/// task is trivially safe, yet the LogicBlox scan verifies each of the
/// `n` candidates against all `n` blockers — `Θ(n²)` simulated scheduler
/// time before anything runs — while LevelBased (and therefore the
/// Hybrid, which never needs the scan here) dispatches each task in
/// `O(1)`.
pub fn hundred_x(n: u32) -> Instance {
    let b = DagBuilder::new(n as usize);
    let dag: Arc<Dag> = Arc::new(b.build().unwrap());
    let mut inst = Instance::unit(dag, (0..n).map(NodeId).collect());
    for d in &mut inst.durations {
        *d = 5e-6;
    }
    debug_assert!(inst.validate().is_ok());
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use incr_dag::IntervalList;

    #[test]
    fn figure2_shape() {
        let inst = figure2(6);
        assert_eq!(inst.dag.node_count(), 11);
        assert_eq!(inst.dag.num_levels(), 6);
        // k_2 has span l-1 = 5; k_l has span 1.
        assert_eq!(inst.shapes[6], TaskShape::Chain { len: 5 });
        assert_eq!(inst.shapes[10], TaskShape::Chain { len: 1 });
        assert_eq!(inst.active_count(), 11, "everything activates");
    }

    #[test]
    fn figure2_work_is_quadratic() {
        let l = 10;
        let inst = figure2(l);
        // Total work: l units (chain) + sum_{i=2..l} (l-i+1) = l + l(l-1)/2.
        let expect = l as u64 + (l as u64) * (l as u64 - 1) / 2;
        assert_eq!(inst.active_work_units(), expect);
    }

    #[test]
    fn lbx_cubic_activates_everything_at_once() {
        let inst = lbx_cubic(20);
        assert_eq!(inst.active_count(), 21);
        assert_eq!(inst.fired[0].len(), 20);
        assert_eq!(inst.dag.num_levels(), 21);
    }

    #[test]
    fn interval_blowup_is_superlinear() {
        let small = IntervalList::build(&interval_blowup(8)).total_intervals();
        let large = IntervalList::build(&interval_blowup(16)).total_intervals();
        assert!(large as f64 >= 3.0 * small as f64, "{small} -> {large}");
    }

    #[test]
    fn hundred_x_is_shallow_and_wide() {
        let inst = hundred_x(100);
        assert_eq!(inst.dag.num_levels(), 1);
        assert_eq!(inst.initial_active.len(), 100);
        assert_eq!(inst.active_count(), 100);
    }
}
