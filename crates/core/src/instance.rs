//! A scheduling *instance*: the DAG `G`, per-task execution metadata, the
//! initially-dirtied tasks, and the (hidden) activation behaviour that
//! induces the active graph `H = (W, F)` (paper §II-A).
//!
//! The activation behaviour is data the *environment* (simulator, runtime,
//! Datalog engine) replays or computes; schedulers never read it directly —
//! they only observe `start(initial)` and `on_completed(v, fired)` events,
//! exactly as in the paper where "the active graph is dynamically revealed
//! over time as the nodes are executed".

use incr_dag::reach::NodeSet;
use incr_dag::{Dag, NodeId};
use std::sync::Arc;

/// Internal structure of one task, for the unit-step simulator (the paper's
/// DAG model of computation, §IV): a task is itself a DAG `D_u` of unit
/// subtasks with some work `w` and span `S^T`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskShape {
    /// One unit of work (`w = S^T = 1`) — the Lemma 3 regime.
    Unit,
    /// `work` independent unit subtasks (fully parallelizable, `S^T = 1`
    /// stage) — the Lemma 5 regime.
    Parallel { work: u32 },
    /// A sequential chain: `work = span = len` — no internal parallelism,
    /// the shape of the `k_i` tasks in the Figure 2 tight example.
    Chain { len: u32 },
    /// General case: `span` sequential stages over `work` total units, each
    /// stage up to `ceil(work / span)` wide — the Lemma 7 regime.
    WorkSpan { work: u32, span: u32 },
}

impl TaskShape {
    /// Total units of work `w_u`.
    pub fn work(&self) -> u64 {
        match *self {
            TaskShape::Unit => 1,
            TaskShape::Parallel { work } => work as u64,
            TaskShape::Chain { len } => len as u64,
            TaskShape::WorkSpan { work, .. } => work as u64,
        }
    }

    /// Task span `S^T_u` (critical path of `D_u`).
    pub fn span(&self) -> u64 {
        match *self {
            TaskShape::Unit => 1,
            TaskShape::Parallel { .. } => 1,
            TaskShape::Chain { len } => len as u64,
            TaskShape::WorkSpan { span, .. } => span as u64,
        }
    }
}

/// A complete scheduling instance.
#[derive(Clone, Debug)]
pub struct Instance {
    /// The computation DAG `G`.
    pub dag: Arc<Dag>,
    /// Per-node processing time in seconds, for the event simulator
    /// (production job traces carry this, §VI-A).
    pub durations: Vec<f64>,
    /// Per-node internal shape, for the unit-step simulator.
    pub shapes: Vec<TaskShape>,
    /// Initially-dirtied tasks (the trace's "initial tasks", Table I).
    pub initial_active: Vec<NodeId>,
    /// `fired[v]` = children whose input changes when `v` executes; this is
    /// the hidden edge set `F` of the active graph. Children listed here
    /// must be children of `v` in `G`.
    pub fired: Vec<Vec<NodeId>>,
}

impl Instance {
    /// Build an instance with unit durations/shapes and no firing edges.
    pub fn unit(dag: Arc<Dag>, initial_active: Vec<NodeId>) -> Instance {
        let n = dag.node_count();
        Instance {
            dag,
            durations: vec![1.0; n],
            shapes: vec![TaskShape::Unit; n],
            initial_active,
            fired: vec![Vec::new(); n],
        }
    }

    /// Validate internal consistency; returns a description of the first
    /// violation found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.dag.node_count();
        if self.durations.len() != n || self.shapes.len() != n || self.fired.len() != n {
            return Err(format!(
                "side-table lengths ({}, {}, {}) do not match node count {}",
                self.durations.len(),
                self.shapes.len(),
                self.fired.len(),
                n
            ));
        }
        for v in &self.initial_active {
            if v.index() >= n {
                return Err(format!("initial task {v} out of range"));
            }
        }
        for (i, d) in self.durations.iter().enumerate() {
            if !d.is_finite() || *d < 0.0 {
                return Err(format!("bad duration {d} on node {i}"));
            }
        }
        for (i, fs) in self.fired.iter().enumerate() {
            let u = NodeId::from_index(i);
            for &c in fs {
                if !self.dag.has_edge(u, c) {
                    return Err(format!("fired edge {u}->{c} is not an edge of G"));
                }
            }
        }
        Ok(())
    }

    /// Compute the set `W` of nodes that will be activated over a full run:
    /// the closure of `initial_active` under the `fired` edges. `|W|` is
    /// the "active jobs" column of Table I.
    pub fn active_closure(&self) -> NodeSet {
        let mut active = NodeSet::new(self.dag.node_count());
        let mut queue: Vec<NodeId> = Vec::new();
        for &v in &self.initial_active {
            if active.insert(v) {
                queue.push(v);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &c in &self.fired[u.index()] {
                if active.insert(c) {
                    queue.push(c);
                }
            }
        }
        active
    }

    /// Total active work `w` (sum of durations over `W`), the numerator of
    /// every `w/P` bound.
    pub fn active_work_seconds(&self) -> f64 {
        self.active_closure()
            .iter()
            .map(|v| self.durations[v.index()])
            .sum()
    }

    /// Total active work in unit-subtask units (for the step simulator).
    pub fn active_work_units(&self) -> u64 {
        self.active_closure()
            .iter()
            .map(|v| self.shapes[v.index()].work())
            .sum()
    }

    /// `S_i` per level: the maximum task span among *active* tasks at each
    /// level (Definition 6); `Σ S_i` appears in the Lemma 7 bound.
    pub fn level_spans(&self) -> Vec<u64> {
        let mut spans = vec![0u64; self.dag.num_levels() as usize];
        for v in self.active_closure().iter() {
            let l = self.dag.level(v) as usize;
            spans[l] = spans[l].max(self.shapes[v.index()].span());
        }
        spans
    }

    /// Number of active nodes `n = |W|`.
    pub fn active_count(&self) -> usize {
        self.active_closure().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incr_dag::DagBuilder;

    fn chain3() -> Arc<Dag> {
        let mut b = DagBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn shape_work_and_span() {
        assert_eq!(TaskShape::Unit.work(), 1);
        assert_eq!(TaskShape::Parallel { work: 9 }.span(), 1);
        assert_eq!(TaskShape::Chain { len: 4 }.work(), 4);
        assert_eq!(TaskShape::Chain { len: 4 }.span(), 4);
        let ws = TaskShape::WorkSpan { work: 12, span: 3 };
        assert_eq!(ws.work(), 12);
        assert_eq!(ws.span(), 3);
    }

    #[test]
    fn closure_follows_fired_edges() {
        let mut inst = Instance::unit(chain3(), vec![NodeId(0)]);
        inst.fired[0] = vec![NodeId(1)];
        // Node 1 fires nothing: node 2 never activates.
        let w = inst.active_closure();
        assert!(w.contains(NodeId(0)));
        assert!(w.contains(NodeId(1)));
        assert!(!w.contains(NodeId(2)));
        assert_eq!(inst.active_count(), 2);
    }

    #[test]
    fn validate_rejects_nonedges() {
        let mut inst = Instance::unit(chain3(), vec![NodeId(0)]);
        inst.fired[0] = vec![NodeId(2)]; // not an edge of G
        assert!(inst.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_durations() {
        let mut inst = Instance::unit(chain3(), vec![]);
        inst.durations[1] = f64::NAN;
        assert!(inst.validate().is_err());
        inst.durations[1] = -1.0;
        assert!(inst.validate().is_err());
    }

    #[test]
    fn validate_accepts_wellformed() {
        let mut inst = Instance::unit(chain3(), vec![NodeId(0)]);
        inst.fired[0] = vec![NodeId(1)];
        assert!(inst.validate().is_ok());
    }

    #[test]
    fn work_and_spans() {
        let mut inst = Instance::unit(chain3(), vec![NodeId(0)]);
        inst.fired[0] = vec![NodeId(1)];
        inst.durations = vec![2.0, 3.0, 100.0];
        inst.shapes = vec![
            TaskShape::Unit,
            TaskShape::Chain { len: 5 },
            TaskShape::Parallel { work: 7 },
        ];
        assert_eq!(inst.active_work_seconds(), 5.0);
        assert_eq!(inst.active_work_units(), 6);
        assert_eq!(inst.level_spans(), vec![1, 5, 0]);
    }
}
