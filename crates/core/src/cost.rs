//! Scheduling-cost accounting.
//!
//! Every scheduler charges its decisions to a [`CostMeter`] in abstract
//! operation counts. The simulator converts counts into simulated seconds
//! through a [`CostPrices`] vector, which is how "scheduling overhead"
//! enters the simulated makespan (Tables II and III report makespans that
//! *include* scheduling overhead; Table III reports the overhead itself).
//!
//! Keeping the meter abstract (counts, not wall time) makes runs
//! deterministic and lets the ablation harness re-price the same run to
//! test the sensitivity of the paper's orderings to the price vector.

/// Operation counters accumulated by a scheduler over one run.
#[derive(Default, Clone, Copy, Debug, PartialEq)]
pub struct CostMeter {
    /// Activation events processed (node marked active).
    pub activations: u64,
    /// Completion events processed.
    pub completions: u64,
    /// `pop_ready` invocations.
    pub pops: u64,
    /// Level-bucket operations: pushes, pops, and level-cursor advances
    /// (LevelBased; the `O(n + L)` of Theorem 2 counts exactly these).
    pub bucket_ops: u64,
    /// Active-queue scan iterations (LogicBlox candidate visits).
    pub scan_steps: u64,
    /// Ancestor queries issued against the interval list.
    pub ancestor_queries: u64,
    /// Binary-search probes performed inside ancestor queries.
    pub interval_probes: u64,
    /// BFS node visits during LBL look-ahead.
    pub bfs_steps: u64,
    /// Signals sent along DAG edges (brute-force propagation).
    pub messages: u64,
}

impl CostMeter {
    /// Total abstract operations (unweighted).
    pub fn total_ops(&self) -> u64 {
        self.activations
            + self.completions
            + self.pops
            + self.bucket_ops
            + self.scan_steps
            + self.ancestor_queries
            + self.interval_probes
            + self.bfs_steps
            + self.messages
    }

    /// Weighted cost in simulated seconds under a price vector.
    pub fn weighted(&self, p: &CostPrices) -> f64 {
        self.activations as f64 * p.event
            + self.completions as f64 * p.event
            + self.pops as f64 * p.event
            + self.bucket_ops as f64 * p.bucket_op
            + self.scan_steps as f64 * p.scan_step
            + self.ancestor_queries as f64 * p.ancestor_query
            + self.interval_probes as f64 * p.interval_probe
            + self.bfs_steps as f64 * p.bfs_step
            + self.messages as f64 * p.message
    }

    /// A point-in-time copy of the counters. `CostMeter` is `Copy`, so
    /// this is a plain read — the name exists for call sites that pair it
    /// with [`CostMeter::delta`] to attribute cost to a phase:
    ///
    /// ```
    /// # use incr_sched::cost::CostMeter;
    /// # let meter = CostMeter { pops: 3, ..CostMeter::default() };
    /// let before = meter.snapshot();
    /// // ... scheduler does work, meter advances ...
    /// let spent = meter.snapshot().delta(&before);
    /// # assert_eq!(spent.pops, 0);
    /// ```
    pub fn snapshot(&self) -> CostMeter {
        *self
    }

    /// Counters accumulated since `earlier` (component-wise saturating
    /// difference, so a meter reset between the two snapshots yields
    /// zeros rather than wrapping).
    pub fn delta(&self, earlier: &CostMeter) -> CostMeter {
        CostMeter {
            activations: self.activations.saturating_sub(earlier.activations),
            completions: self.completions.saturating_sub(earlier.completions),
            pops: self.pops.saturating_sub(earlier.pops),
            bucket_ops: self.bucket_ops.saturating_sub(earlier.bucket_ops),
            scan_steps: self.scan_steps.saturating_sub(earlier.scan_steps),
            ancestor_queries: self.ancestor_queries.saturating_sub(earlier.ancestor_queries),
            interval_probes: self.interval_probes.saturating_sub(earlier.interval_probes),
            bfs_steps: self.bfs_steps.saturating_sub(earlier.bfs_steps),
            messages: self.messages.saturating_sub(earlier.messages),
        }
    }

    /// The counters as a JSON object (the `overhead_ops` block of the
    /// machine-readable bench results).
    pub fn to_value(&self) -> incr_obs::Json {
        incr_obs::json::obj([
            ("activations", self.activations.into()),
            ("completions", self.completions.into()),
            ("pops", self.pops.into()),
            ("bucket_ops", self.bucket_ops.into()),
            ("scan_steps", self.scan_steps.into()),
            ("ancestor_queries", self.ancestor_queries.into()),
            ("interval_probes", self.interval_probes.into()),
            ("bfs_steps", self.bfs_steps.into()),
            ("messages", self.messages.into()),
            ("total_ops", self.total_ops().into()),
        ])
    }

    /// Component-wise sum (used by the Hybrid scheduler to aggregate its
    /// two sub-schedulers).
    pub fn plus(&self, o: &CostMeter) -> CostMeter {
        CostMeter {
            activations: self.activations + o.activations,
            completions: self.completions + o.completions,
            pops: self.pops + o.pops,
            bucket_ops: self.bucket_ops + o.bucket_ops,
            scan_steps: self.scan_steps + o.scan_steps,
            ancestor_queries: self.ancestor_queries + o.ancestor_queries,
            interval_probes: self.interval_probes + o.interval_probes,
            bfs_steps: self.bfs_steps + o.bfs_steps,
            messages: self.messages + o.messages,
        }
    }
}

/// Per-operation prices in simulated seconds.
///
/// The defaults are calibrated so the simulated baseline reproduces the
/// magnitudes of the paper's production measurements: the interval-list
/// scan loop is a tight few-ns-per-blocker inner loop (Table III's trace
/// #6 implies ≈1.4 ns per ancestor check at n² ≈ 1.6·10¹⁰ checks for
/// ≈22 s of overhead), while per-event dispatch bookkeeping costs tens of
/// nanoseconds. Absolute values only set the time *scale* of the
/// reported overhead — the paper's qualitative results are checked to be
/// stable under 0.5×–2× re-pricing (`ablation_cost`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostPrices {
    pub event: f64,
    pub bucket_op: f64,
    pub scan_step: f64,
    pub ancestor_query: f64,
    pub interval_probe: f64,
    pub bfs_step: f64,
    pub message: f64,
}

impl Default for CostPrices {
    fn default() -> Self {
        CostPrices {
            event: 40e-9,
            bucket_op: 25e-9,
            scan_step: 1.5e-9,
            ancestor_query: 1.0e-9,
            interval_probe: 0.3e-9,
            bfs_step: 10e-9,
            message: 8e-9,
        }
    }
}

impl CostPrices {
    /// Uniformly scale every price (ablation: 0.5×, 2×).
    pub fn scaled(&self, f: f64) -> CostPrices {
        CostPrices {
            event: self.event * f,
            bucket_op: self.bucket_op * f,
            scan_step: self.scan_step * f,
            ancestor_query: self.ancestor_query * f,
            interval_probe: self.interval_probe * f,
            bfs_step: self.bfs_step * f,
            message: self.message * f,
        }
    }

    /// Price vector with everything free — pure-makespan simulations
    /// (the theory-bound checks of Lemmas 3/5/7 exclude overhead).
    pub fn free() -> CostPrices {
        CostPrices {
            event: 0.0,
            bucket_op: 0.0,
            scan_step: 0.0,
            ancestor_query: 0.0,
            interval_probe: 0.0,
            bfs_step: 0.0,
            message: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_accumulates() {
        let m = CostMeter {
            pops: 10,
            scan_steps: 100,
            ..CostMeter::default()
        };
        let p = CostPrices {
            event: 1.0,
            scan_step: 2.0,
            ..CostPrices::free()
        };
        assert_eq!(m.weighted(&p), 10.0 + 200.0);
    }

    #[test]
    fn plus_is_componentwise() {
        let a = CostMeter {
            pops: 1,
            messages: 2,
            ..CostMeter::default()
        };
        let b = CostMeter {
            pops: 3,
            bfs_steps: 4,
            ..CostMeter::default()
        };
        let s = a.plus(&b);
        assert_eq!(s.pops, 4);
        assert_eq!(s.messages, 2);
        assert_eq!(s.bfs_steps, 4);
    }

    #[test]
    fn free_prices_zero_everything() {
        let m = CostMeter {
            activations: 5,
            completions: 5,
            pops: 5,
            bucket_ops: 5,
            scan_steps: 5,
            ancestor_queries: 5,
            interval_probes: 5,
            bfs_steps: 5,
            messages: 5,
        };
        assert_eq!(m.weighted(&CostPrices::free()), 0.0);
        assert_eq!(m.total_ops(), 45);
    }

    #[test]
    fn snapshot_then_delta_attributes_cost_to_a_phase() {
        let mut m = CostMeter {
            pops: 10,
            scan_steps: 5,
            ..CostMeter::default()
        };
        let before = m.snapshot();
        m.pops += 3;
        m.messages += 7;
        let spent = m.snapshot().delta(&before);
        assert_eq!(spent.pops, 3);
        assert_eq!(spent.messages, 7);
        assert_eq!(spent.scan_steps, 0);
        assert_eq!(spent.total_ops(), 10);
    }

    #[test]
    fn delta_saturates_after_reset() {
        let before = CostMeter {
            pops: 100,
            ..CostMeter::default()
        };
        let after_reset = CostMeter {
            pops: 2,
            ..CostMeter::default()
        };
        assert_eq!(after_reset.delta(&before).pops, 0);
    }

    #[test]
    fn to_value_exports_every_counter() {
        let m = CostMeter {
            activations: 1,
            completions: 2,
            pops: 3,
            bucket_ops: 4,
            scan_steps: 5,
            ancestor_queries: 6,
            interval_probes: 7,
            bfs_steps: 8,
            messages: 9,
        };
        let v = m.to_value();
        assert_eq!(v.get("ancestor_queries").unwrap().as_u64(), Some(6));
        assert_eq!(v.get("total_ops").unwrap().as_u64(), Some(45));
        // Round-trips through the serializer.
        let text = v.to_json();
        let back = incr_obs::Json::parse(&text).unwrap();
        assert_eq!(back.get("messages").unwrap().as_u64(), Some(9));
    }

    #[test]
    fn scaling_prices_scales_cost() {
        let m = CostMeter {
            pops: 7,
            ..CostMeter::default()
        };
        let p = CostPrices::default();
        let base = m.weighted(&p);
        assert!((m.weighted(&p.scaled(2.0)) - 2.0 * base).abs() < 1e-15);
    }
}
