//! LevelBased with LookAhead — LBL(k) (paper §III "Extending the
//! algorithm" and §VI-B).
//!
//! Plain LevelBased refuses to dispatch past the current level until every
//! task on it completes; a single long straggler idles all processors. LBL
//! adds a look-ahead: when the current level is drained but still running,
//! it searches the next `k` levels for active tasks that are *provably
//! safe* — not descendants "of either running nodes or nodes that are yet
//! to be run" — via a bounded breadth-first search, exactly as §VI-B
//! describes. Worst-case `O(n²)` scheduling work, but cheap when levels
//! are sparse, which is precisely when LevelBased alone stalls.

use crate::cost::CostMeter;
use crate::levelbased::LevelBased;
use crate::scheduler::{NodeState, Scheduler};
use incr_dag::reach::NodeSet;
use incr_dag::NodeId;
use std::collections::VecDeque;
use std::sync::Arc;

/// LBL(k): LevelBased plus a `k`-level look-ahead.
pub struct LevelBasedLookahead {
    base: LevelBased,
    k: u32,
    /// Tasks proven safe by a previous look-ahead, not yet handed out.
    /// Safety is stable: a task with no active-uncompleted ancestor can
    /// never acquire one, because new activations descend only from nodes
    /// that were active-uncompleted at proof time (Lemma 1's argument).
    stash: Vec<NodeId>,
    /// BFS scratch, reused across calls.
    reached: NodeSet,
    enqueued: NodeSet,
    queue: VecDeque<NodeId>,
    /// Cleared whenever scheduler state changes; set after a fruitless
    /// look-ahead so idle processors re-polling during the same stall do
    /// not repeat (and re-charge) an identical scan + BFS.
    lookahead_exhausted: bool,
}

impl LevelBasedLookahead {
    pub fn new(dag: Arc<incr_dag::Dag>, k: u32) -> Self {
        let n = dag.node_count();
        LevelBasedLookahead {
            base: LevelBased::new(dag),
            k,
            stash: Vec::new(),
            reached: NodeSet::new(n),
            enqueued: NodeSet::new(n),
            queue: VecDeque::new(),
            lookahead_exhausted: false,
        }
    }

    /// The look-ahead depth `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Search levels `(cur, cur + k]` for provably safe active tasks.
    ///
    /// Blocking set `B`: every active-or-running (uncompleted) task at
    /// level ≤ `cur + k` — including the candidates themselves, since a
    /// candidate may block another candidate below it. A candidate is safe
    /// iff no member of `B` reaches it along a directed path of length
    /// ≥ 1. One BFS computes this: seed the queue with all of `B`
    /// *unmarked*, and mark nodes only when reached across an edge.
    fn lookahead(&mut self) -> Option<NodeId> {
        if self.k == 0 {
            return None;
        }
        let dag = self.base.dag.clone();
        let cur = self.base.cur;
        let horizon = cur.saturating_add(self.k); // deepest level, inclusive
        let top = ((horizon as usize) + 1).min(self.base.buckets.len());

        // Candidates: active, undispatched, level in (cur, horizon].
        let mut candidates: Vec<NodeId> = Vec::new();
        for l in (cur as usize + 1)..top {
            for &v in &self.base.buckets[l] {
                self.base.cost.scan_steps += 1;
                if self.base.state.get(v) == NodeState::Active {
                    candidates.push(v);
                }
            }
        }
        if candidates.is_empty() {
            return None;
        }

        self.reached.clear();
        self.enqueued.clear();
        self.queue.clear();
        // Seeds: undispatched actives at levels [cur, horizon] ...
        for l in (cur as usize)..top {
            for &v in &self.base.buckets[l] {
                if self.base.state.get(v) == NodeState::Active && self.enqueued.insert(v) {
                    self.queue.push_back(v);
                }
            }
        }
        // ... plus running tasks (dispatched, not completed).
        for &v in &self.base.running {
            if dag.level(v) <= horizon && self.enqueued.insert(v) {
                self.queue.push_back(v);
            }
        }
        // Flow marks downward; `reached` = has an incoming path from B.
        while let Some(u) = self.queue.pop_front() {
            self.base.cost.bfs_steps += 1;
            for &c in dag.children(u) {
                if dag.level(c) > horizon {
                    continue;
                }
                self.reached.insert(c);
                if self.enqueued.insert(c) {
                    self.queue.push_back(c);
                }
            }
        }

        // Unreached candidates are safe; hand out one, stash the rest.
        let mut first: Option<NodeId> = None;
        for &cnd in &candidates {
            if self.reached.contains(cnd) {
                continue;
            }
            if first.is_none() {
                first = Some(cnd);
            } else {
                self.stash.push(cnd);
            }
        }
        if let Some(t) = first {
            self.base.dispatch(t);
        }
        first
    }

    fn pop_stash(&mut self) -> Option<NodeId> {
        while let Some(t) = self.stash.pop() {
            if self.base.state.get(t) == NodeState::Active {
                self.base.dispatch(t);
                return Some(t);
            }
        }
        None
    }
}

impl Scheduler for LevelBasedLookahead {
    fn name(&self) -> &str {
        "LBL"
    }

    fn start(&mut self, initial_active: &[NodeId]) {
        self.base.start(initial_active);
        self.stash.clear();
        self.lookahead_exhausted = false;
    }

    fn on_completed(&mut self, v: NodeId, fired: &[NodeId]) {
        self.base.on_completed(v, fired);
        self.lookahead_exhausted = false;
    }

    fn pop_ready(&mut self) -> Option<NodeId> {
        self.base.cost.pops += 1;
        if let Some(t) = self.base.pop_at_cursor() {
            return Some(t);
        }
        if let Some(t) = self.pop_stash() {
            return Some(t);
        }
        if self.base.state.active_unexecuted() == 0 || self.lookahead_exhausted {
            return None;
        }
        let found = self.lookahead();
        // Nothing safe within the horizon: identical until state changes.
        self.lookahead_exhausted = found.is_none();
        found
    }

    fn pop_batch(&mut self, out: &mut Vec<NodeId>, max: usize) -> usize {
        // Same cascade as pop_ready (cursor → stash → look-ahead), but one
        // `pops` charge and one trait crossing for the whole wavefront.
        self.base.cost.pops += 1;
        let before = out.len();
        while out.len() - before < max {
            if let Some(t) = self.base.pop_at_cursor() {
                out.push(t);
                continue;
            }
            if let Some(t) = self.pop_stash() {
                out.push(t);
                continue;
            }
            if self.base.state.active_unexecuted() == 0 || self.lookahead_exhausted {
                break;
            }
            match self.lookahead() {
                Some(t) => out.push(t),
                None => {
                    self.lookahead_exhausted = true;
                    break;
                }
            }
        }
        out.len() - before
    }

    fn is_quiescent(&self) -> bool {
        self.base.is_quiescent()
    }

    fn cost(&self) -> CostMeter {
        self.base.cost
    }

    fn space_bytes(&self) -> usize {
        self.base.space_bytes()
            + self.stash.len() * std::mem::size_of::<NodeId>()
            // Persistent BFS scratch: two bitsets over V plus the queue.
            + 2 * self.reached_bytes()
            + self.queue.capacity() * std::mem::size_of::<NodeId>()
    }

    fn precompute_bytes(&self) -> usize {
        self.base.precompute_bytes()
    }

    fn on_external_dispatch(&mut self, v: NodeId) {
        self.base.on_external_dispatch(v);
        self.lookahead_exhausted = false;
    }

    fn gauges(&self) -> Vec<(&'static str, i64)> {
        let mut g = self.base.gauges();
        g.push(("lbl.stash_depth", self.stash.len() as i64));
        g.push(("lbl.bfs_visits", self.base.cost.bfs_steps as i64));
        g
    }
}

impl LevelBasedLookahead {
    /// Bytes of one BFS scratch bitset (V bits).
    fn reached_bytes(&self) -> usize {
        self.base.dag.node_count().div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incr_dag::{Dag, DagBuilder};

    /// Level 0: two sources a=0, b=1.
    /// a -> x (level 1) -> y (level 2); b -> z (level 2, via dummy chain).
    /// Instance: a long task at level 1 (x) plus an independent task at
    /// level 2 (w, child of b through c) that plain LevelBased would hold
    /// back behind the barrier.
    fn ladder() -> Arc<Dag> {
        // 0 -> 2 -> 4   (chain A: levels 0,1,2)
        // 1 -> 3 -> 5   (chain B: levels 0,1,2)
        let mut b = DagBuilder::new(6);
        for (u, v) in [(0, 2), (2, 4), (1, 3), (3, 5)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        Arc::new(b.build().unwrap())
    }

    /// Drive both chains active, complete chain B's level-1 task, and keep
    /// chain A's level-1 task running: LB stalls, LBL(k>=1) must hand out
    /// chain B's level-2 task.
    fn stall_setup(s: &mut dyn Scheduler) -> (NodeId, NodeId) {
        s.start(&[NodeId(0), NodeId(1)]);
        let a = s.pop_ready().unwrap();
        let b = s.pop_ready().unwrap();
        s.on_completed(a, &[NodeId(a.0 + 2)]);
        s.on_completed(b, &[NodeId(b.0 + 2)]);
        // Level 1 now: nodes 2 and 3 active.
        let t1 = s.pop_ready().unwrap();
        let t2 = s.pop_ready().unwrap();
        (t1, t2)
    }

    #[test]
    fn plain_levelbased_stalls_at_barrier() {
        let mut s = LevelBased::new(ladder());
        let (t1, _t2) = stall_setup(&mut s);
        // Complete t1 (fires its level-2 child); t2 still running.
        s.on_completed(t1, &[NodeId(t1.0 + 2)]);
        assert!(s.pop_ready().is_none(), "LB must stall behind straggler");
    }

    #[test]
    fn lookahead_breaks_the_barrier() {
        let mut s = LevelBasedLookahead::new(ladder(), 5);
        let (t1, t2) = stall_setup(&mut s);
        let child = NodeId(t1.0 + 2);
        s.on_completed(t1, &[child]);
        // t2 (level 1) still running; its own child is NOT active. The
        // fired child of t1 at level 2 is safe: its only ancestor chain is
        // completed. LBL must find it.
        let found = s.pop_ready().expect("LBL should find the safe level-2 task");
        assert_eq!(found, child);
        s.on_completed(found, &[]);
        s.on_completed(t2, &[]);
        assert!(s.is_quiescent());
    }

    #[test]
    fn lookahead_rejects_descendants_of_running_tasks() {
        let mut s = LevelBasedLookahead::new(ladder(), 5);
        let (t1, t2) = stall_setup(&mut s);
        // Complete t2 firing ITS child; t1 still running. The fired child
        // (t2's) is safe; but if instead the child of the *running* t1
        // were active, it must not be offered. Construct that: fire t2's
        // child and also consider that t1 runs.
        let safe_child = NodeId(t2.0 + 2);
        s.on_completed(t2, &[safe_child]);
        let found = s.pop_ready().unwrap();
        assert_eq!(found, safe_child, "only the non-descendant is safe");
        // Nothing else: t1's child is not active, t1 still running.
        assert!(s.pop_ready().is_none());
        s.on_completed(found, &[]);
        s.on_completed(t1, &[]);
        assert!(s.is_quiescent());
    }

    #[test]
    fn candidates_can_block_each_other() {
        // 0 -> 1, 0 -> 2, 1 -> 2, fan-in at 3. Node 2 is a descendant of
        // node 1, so when both are activated by node 0's completion, the
        // look-ahead must not offer 2 while 1 is uncompleted.
        let mut b = DagBuilder::new(4);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        let dag: Arc<Dag> = Arc::new(b.build().unwrap());
        let mut s = LevelBasedLookahead::new(dag, 5);
        s.start(&[NodeId(0)]);
        let t0 = s.pop_ready().unwrap();
        // Keep ANOTHER task running? No: complete 0 firing both 1 and 2.
        s.on_completed(t0, &[NodeId(1), NodeId(2)]);
        // Level cursor moves to level 1: node 1 pops normally.
        let t1 = s.pop_ready().unwrap();
        assert_eq!(t1, NodeId(1));
        // Node 2 (level 2) is active but is a descendant of running node 1:
        // the look-ahead must NOT offer it.
        assert!(s.pop_ready().is_none());
        s.on_completed(t1, &[NodeId(2)]);
        assert_eq!(s.pop_ready(), Some(NodeId(2)));
        s.on_completed(NodeId(2), &[]);
        assert!(s.is_quiescent());
    }

    #[test]
    fn k_zero_behaves_like_levelbased() {
        let mut s = LevelBasedLookahead::new(ladder(), 0);
        let (t1, _t2) = stall_setup(&mut s);
        s.on_completed(t1, &[NodeId(t1.0 + 2)]);
        assert!(s.pop_ready().is_none(), "LBL(0) keeps the barrier");
    }

    #[test]
    fn horizon_limits_search_depth() {
        // Chain 0->1->2->3->4 plus side source 5 -> 6 where 6 sits at a
        // deep level: 5 -> 6 with extra paddings to push 6 to level 4.
        // Simpler: candidates deeper than k are invisible.
        let mut b = DagBuilder::new(7);
        // main chain at levels 0..4
        for i in 0..4u32 {
            b.add_edge(NodeId(i), NodeId(i + 1));
        }
        // independent chain: 5 (level 0) -> 6 (level 1)
        b.add_edge(NodeId(5), NodeId(6));
        let dag = Arc::new(b.build().unwrap());
        let mut s = LevelBasedLookahead::new(dag, 1);
        s.start(&[NodeId(0), NodeId(5)]);
        let a = s.pop_ready().unwrap();
        let c = s.pop_ready().unwrap();
        assert_eq!([a, c].iter().filter(|v| v.0 == 0 || v.0 == 5).count(), 2);
        // Complete source 5 firing node 6 (level 1); keep source 0 running.
        s.on_completed(NodeId(5), &[NodeId(6)]);
        // Look-ahead depth 1 covers level 1: node 6 is safe (parent done).
        assert_eq!(s.pop_ready(), Some(NodeId(6)));
    }
}
