//! # incr-sched — the paper's scheduling algorithms
//!
//! Rust reproduction of the schedulers from *"A Scheduling Approach to
//! Incremental Maintenance of Datalog Programs"* (IPDPS 2020):
//!
//! | Type | Paper section | Guarantee |
//! |---|---|---|
//! | [`LevelBased`] | §III, §IV | scheduling cost `O(n + L)`, space `O(n)`; makespan `≤ w/P + L` (unit / fully-parallel tasks), `≤ w/P + Σ Sᵢ` (arbitrary) |
//! | [`LevelBasedLookahead`] (LBL(k)) | §III, §VI-B | repairs the per-level barrier; worst case `O(n²)` |
//! | [`LogicBlox`] | §II-C, §VI-B | the production baseline: interval-list ancestor queries, `O(n³)` worst-case scheduling time, `O(V²)` worst-case space |
//! | [`SignalPropagation`] | §II-C | no precomputation, `Θ(V + E)` messages regardless of `n` |
//! | [`Hybrid`] | §V, §VI | best of both: LogicBlox's typical makespan with LevelBased's worst-case robustness |
//! | [`Duo`] | §V | the general combinator: LevelBased alongside *any* heuristic |
//! | [`ExactGreedy`] | — | test oracle: exact readiness from ground-truth reachability |
//!
//! All schedulers speak one event protocol ([`Scheduler`]): the
//! environment delivers the initially-dirty tasks, asks for safe tasks
//! when processors idle, and reports completions together with which
//! out-edges *fired* (carried changed data) — the dynamic revelation of
//! the active graph `H` that makes this problem different from classic
//! precedence-constrained scheduling.
//!
//! Scheduling *overhead* is accounted in abstract operation counts
//! ([`CostMeter`]) priced into simulated seconds by the simulator
//! ([`CostPrices`]); the meta-scheduler of Theorem 10 is implemented in
//! `incr-sim` on top of these primitives.
//!
//! ```
//! use incr_sched::{LevelBased, Scheduler};
//! use incr_dag::{DagBuilder, NodeId};
//! use std::sync::Arc;
//!
//! // A two-level diamond; only the source is dirty.
//! let mut b = DagBuilder::new(4);
//! for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
//!     b.add_edge(NodeId(u), NodeId(v));
//! }
//! let dag = Arc::new(b.build().unwrap());
//!
//! let mut sched = LevelBased::new(dag);
//! sched.start(&[NodeId(0)]);
//! let t = sched.pop_ready().unwrap();
//! assert_eq!(t, NodeId(0));
//! // Executing the source changed only node 1's input:
//! sched.on_completed(t, &[NodeId(1)]);
//! assert_eq!(sched.pop_ready(), Some(NodeId(1)));
//! sched.on_completed(NodeId(1), &[]);
//! assert!(sched.is_quiescent());
//! ```

pub mod cost;
pub mod duo;
pub mod hybrid;
pub mod instance;
pub mod levelbased;
pub mod logicblox;
pub mod lookahead;
pub mod obs;
pub mod scheduler;
pub mod signal;
pub mod stream;

pub use cost::{CostMeter, CostPrices};
pub use duo::Duo;
pub use obs::Observed;
pub use hybrid::{Hybrid, HybridConfig};
pub use instance::{Instance, TaskShape};
pub use levelbased::LevelBased;
pub use logicblox::{LogicBlox, ScanMode};
pub use lookahead::LevelBasedLookahead;
pub use scheduler::{
    CompletionBatch, ExactGreedy, NodeState, SafetyChecker, Scheduler, StateTable,
};
pub use signal::SignalPropagation;
pub use stream::ActivationCoalescer;

use incr_dag::Dag;
use std::sync::Arc;

/// Scheduler constructors addressable by name — the benches and examples
/// build their scheduler line-ups from these.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerKind {
    LevelBased,
    /// LBL(k).
    Lookahead(u32),
    LogicBlox,
    LogicBloxFaithful,
    SignalPropagation,
    Hybrid,
    /// Hybrid with the production-style concurrent background scan
    /// (slice = candidates examined per pop).
    HybridBackground(usize),
    ExactGreedy,
}

impl SchedulerKind {
    /// Instantiate the scheduler over `dag` (runs any precomputation).
    pub fn build(self, dag: Arc<Dag>) -> Box<dyn Scheduler + Send> {
        match self {
            SchedulerKind::LevelBased => Box::new(LevelBased::new(dag)),
            SchedulerKind::Lookahead(k) => Box::new(LevelBasedLookahead::new(dag, k)),
            SchedulerKind::LogicBlox => Box::new(LogicBlox::new(dag)),
            SchedulerKind::LogicBloxFaithful => {
                Box::new(LogicBlox::with_mode(dag, ScanMode::Faithful))
            }
            SchedulerKind::SignalPropagation => Box::new(SignalPropagation::new(dag)),
            SchedulerKind::Hybrid => Box::new(Hybrid::new(dag)),
            SchedulerKind::HybridBackground(slice) => Box::new(Hybrid::with_config(
                dag,
                HybridConfig {
                    background_scan: true,
                    scan_slice: slice,
                },
            )),
            SchedulerKind::ExactGreedy => Box::new(ExactGreedy::new(dag)),
        }
    }

    /// Display label used in table rows.
    pub fn label(self) -> String {
        match self {
            SchedulerKind::LevelBased => "LevelBased".into(),
            SchedulerKind::Lookahead(k) => format!("LBL(k={k})"),
            SchedulerKind::LogicBlox => "LogicBlox".into(),
            SchedulerKind::LogicBloxFaithful => "LogicBlox(faithful)".into(),
            SchedulerKind::SignalPropagation => "SignalPropagation".into(),
            SchedulerKind::Hybrid => "Hybrid".into(),
            SchedulerKind::HybridBackground(s) => format!("Hybrid(bg={s})"),
            SchedulerKind::ExactGreedy => "ExactGreedy".into(),
        }
    }
}

#[cfg(test)]
mod kind_tests {
    use super::*;
    use incr_dag::{DagBuilder, NodeId};

    #[test]
    fn every_kind_builds_and_runs_a_trivial_instance() {
        let mut b = DagBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1));
        let dag = Arc::new(b.build().unwrap());
        for kind in [
            SchedulerKind::LevelBased,
            SchedulerKind::Lookahead(5),
            SchedulerKind::LogicBlox,
            SchedulerKind::LogicBloxFaithful,
            SchedulerKind::SignalPropagation,
            SchedulerKind::Hybrid,
            SchedulerKind::HybridBackground(8),
            SchedulerKind::ExactGreedy,
        ] {
            let mut s = kind.build(dag.clone());
            s.start(&[NodeId(0)]);
            let t = s.pop_ready().unwrap_or_else(|| panic!("{:?} stalled", kind));
            assert_eq!(t, NodeId(0));
            s.on_completed(t, &[NodeId(1)]);
            let t2 = s.pop_ready().unwrap();
            assert_eq!(t2, NodeId(1));
            s.on_completed(t2, &[]);
            assert!(s.is_quiescent(), "{kind:?}");
            assert!(!kind.label().is_empty());
        }
    }
}

#[cfg(test)]
mod proptests;
