//! The scheduler protocol shared by every algorithm in this crate, plus a
//! reference *exact-readiness* scheduler used as ground truth in tests.
//!
//! The environment (event simulator, step simulator, threaded runtime, or
//! the Datalog engine) drives a scheduler through three entry points:
//!
//! 1. [`Scheduler::start`] — delivers the initially-dirty tasks.
//! 2. [`Scheduler::pop_ready`] — called whenever a processor is idle; the
//!    scheduler may do internal work (scans, look-ahead BFS) and must
//!    charge it to its [`CostMeter`].
//! 3. [`Scheduler::on_completed`] — reports an executed task together with
//!    the children whose input actually changed (`fired`), which is how the
//!    hidden active graph `H` is revealed (paper §II-A).
//!
//! # The safety invariant
//!
//! A popped task must be **safe**: active, not yet executed, and with no
//! active-and-uncompleted node among its ancestors in `G` — otherwise it
//! might have to be re-executed, which the model forbids. The
//! [`SafetyChecker`] verifies this invariant against ground-truth
//! reachability and is wired into every simulator run in tests.

use crate::cost::CostMeter;
use incr_dag::reach::{self, NodeSet};
use incr_dag::{Dag, NodeId};
use std::sync::Arc;

/// Lifecycle of a node during one scheduling run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum NodeState {
    /// Not (yet) activated.
    Clean = 0,
    /// Activated, waiting to be deemed safe.
    Active = 1,
    /// Popped by the environment; executing.
    Running = 2,
    /// Execution finished.
    Done = 3,
}

/// The scheduling protocol. See the module docs for the driving contract.
pub trait Scheduler: Send {
    /// Human-readable algorithm name (table row labels).
    fn name(&self) -> &str;

    /// Reset all run state and deliver the initially-activated tasks.
    fn start(&mut self, initial_active: &[NodeId]);

    /// Report that `v` finished executing and that the children in `fired`
    /// received changed input (and are therefore now active).
    fn on_completed(&mut self, v: NodeId, fired: &[NodeId]);

    /// Ask for one safe task. `None` means "none known right now" — more
    /// may surface after future completions.
    fn pop_ready(&mut self) -> Option<NodeId>;

    /// True when every activated task has completed.
    fn is_quiescent(&self) -> bool;

    /// Accumulated scheduling cost for this run.
    fn cost(&self) -> CostMeter;

    /// Current run-state memory footprint estimate in bytes (excludes
    /// precomputed structures; see [`Scheduler::precompute_bytes`]).
    fn space_bytes(&self) -> usize;

    /// Memory held by precomputed structures (levels, interval lists).
    fn precompute_bytes(&self) -> usize;

    /// Another scheduler sharing the run (the Hybrid of §V) dispatched `v`;
    /// update bookkeeping so this scheduler never offers `v` itself. The
    /// task still blocks descendants until its completion is reported.
    fn on_external_dispatch(&mut self, v: NodeId);

    /// Named instantaneous levels worth graphing — queue depths, the
    /// level frontier, interval-list size. Sampled by
    /// [`crate::obs::Observed`] after each protocol call when tracing is
    /// on; schedulers with nothing interesting inherit the empty default.
    fn gauges(&self) -> Vec<(&'static str, i64)> {
        Vec::new()
    }
}

/// Shared per-node state table with the bookkeeping every scheduler needs.
#[derive(Clone, Debug)]
pub struct StateTable {
    states: Vec<NodeState>,
    active_unexecuted: usize,
    activated_total: usize,
}

impl StateTable {
    pub fn new(n: usize) -> Self {
        StateTable {
            states: vec![NodeState::Clean; n],
            active_unexecuted: 0,
            activated_total: 0,
        }
    }

    pub fn reset(&mut self) {
        self.states.fill(NodeState::Clean);
        self.active_unexecuted = 0;
        self.activated_total = 0;
    }

    #[inline]
    pub fn get(&self, v: NodeId) -> NodeState {
        self.states[v.index()]
    }

    /// Mark `v` active; returns true if this is a new activation.
    /// Panics (debug) if `v` already ran — activation-after-execution is a
    /// model violation (the task would need re-execution).
    pub fn activate(&mut self, v: NodeId) -> bool {
        match self.states[v.index()] {
            NodeState::Clean => {
                self.states[v.index()] = NodeState::Active;
                self.active_unexecuted += 1;
                self.activated_total += 1;
                true
            }
            NodeState::Active => false,
            s => {
                debug_assert!(false, "activated {v} in state {s:?} (already executed)");
                false
            }
        }
    }

    /// Transition Active -> Running when the environment pops `v`.
    pub fn dispatch(&mut self, v: NodeId) {
        debug_assert_eq!(self.states[v.index()], NodeState::Active, "double pop of {v}");
        self.states[v.index()] = NodeState::Running;
    }

    /// Transition Running -> Done.
    pub fn complete(&mut self, v: NodeId) {
        debug_assert_eq!(self.states[v.index()], NodeState::Running, "completion of non-running {v}");
        self.states[v.index()] = NodeState::Done;
        self.active_unexecuted -= 1;
    }

    /// Activated tasks not yet completed (includes running ones): the
    /// scheduler is quiescent when this hits zero.
    #[inline]
    pub fn active_unexecuted(&self) -> usize {
        self.active_unexecuted
    }

    /// Total activations over the run (`n = |W|` once quiescent).
    #[inline]
    pub fn activated_total(&self) -> usize {
        self.activated_total
    }

    /// Bytes held by the table itself.
    pub fn bytes(&self) -> usize {
        self.states.len()
    }
}

/// Reference scheduler with *exact* readiness: a task is offered as soon
/// as no active-uncompleted node is its ancestor, computed from ground
/// truth reachability (precomputed descendant bitsets). It is the
/// quality ceiling for greedy schedules — the LogicBlox baseline matches
/// its decisions, just with different discovery cost — and serves as the
/// "optimal scheduler" comparator of the Figure 2 analysis, where greedy
/// exact readiness achieves the `Θ(M + L)` schedule.
///
/// Memory is `O(V²/64)` bits; use on test- and bench-scale instances only.
pub struct ExactGreedy {
    dag: Arc<Dag>,
    /// descendants[a] as a bitset, precomputed.
    descendants: Vec<NodeSet>,
    state: StateTable,
    /// Active tasks currently blocked (superset; re-filtered on pops).
    blocked: Vec<NodeId>,
    ready: Vec<NodeId>,
    /// Active-uncompleted nodes, list + membership for the readiness test.
    blockers: Vec<NodeId>,
    cost: CostMeter,
}

impl ExactGreedy {
    pub fn new(dag: Arc<Dag>) -> Self {
        let descendants = dag
            .nodes()
            .map(|v| reach::descendants(&dag, v))
            .collect();
        let n = dag.node_count();
        ExactGreedy {
            dag,
            descendants,
            state: StateTable::new(n),
            blocked: Vec::new(),
            ready: Vec::new(),
            blockers: Vec::new(),
            cost: CostMeter::default(),
        }
    }

    fn is_safe(&self, t: NodeId) -> bool {
        self.blockers
            .iter()
            .all(|&a| a == t || !self.descendants[a.index()].contains(t))
    }

    /// Re-derive the ready set from scratch (exact, eager).
    fn refresh(&mut self) {
        let mut still_blocked = Vec::new();
        let blocked = std::mem::take(&mut self.blocked);
        for t in blocked {
            if self.state.get(t) != NodeState::Active {
                continue;
            }
            if self.is_safe(t) {
                self.ready.push(t);
            } else {
                still_blocked.push(t);
            }
        }
        self.blocked = still_blocked;
    }
}

impl Scheduler for ExactGreedy {
    fn name(&self) -> &str {
        "ExactGreedy"
    }

    fn start(&mut self, initial_active: &[NodeId]) {
        self.state.reset();
        self.blocked.clear();
        self.ready.clear();
        self.blockers.clear();
        self.cost = CostMeter::default();
        for &v in initial_active {
            if self.state.activate(v) {
                self.cost.activations += 1;
                self.blocked.push(v);
                self.blockers.push(v);
            }
        }
        self.refresh();
    }

    fn on_completed(&mut self, v: NodeId, fired: &[NodeId]) {
        self.cost.completions += 1;
        self.state.complete(v);
        self.blockers.retain(|&b| b != v);
        for &c in fired {
            if self.state.activate(c) {
                self.cost.activations += 1;
                self.blocked.push(c);
                self.blockers.push(c);
            }
        }
        self.refresh();
    }

    fn pop_ready(&mut self) -> Option<NodeId> {
        self.cost.pops += 1;
        while let Some(t) = self.ready.pop() {
            // Skip entries dispatched externally (hybrid runs).
            if self.state.get(t) == NodeState::Active {
                self.state.dispatch(t);
                return Some(t);
            }
        }
        None
    }

    fn is_quiescent(&self) -> bool {
        self.state.active_unexecuted() == 0
    }

    fn cost(&self) -> CostMeter {
        self.cost
    }

    fn space_bytes(&self) -> usize {
        self.state.bytes()
            + (self.blocked.len() + self.ready.len() + self.blockers.len())
                * std::mem::size_of::<NodeId>()
    }

    fn precompute_bytes(&self) -> usize {
        // V bitsets of V bits.
        self.dag.node_count() * self.dag.node_count() / 8
    }

    fn on_external_dispatch(&mut self, v: NodeId) {
        if self.state.get(v) == NodeState::Active {
            self.state.dispatch(v);
        }
    }
}

/// Ground-truth auditor: wraps the environment side and asserts the safety
/// invariant for every popped task, that no task is popped twice, and (at
/// quiescence) that exactly the active closure was executed.
pub struct SafetyChecker {
    dag: Arc<Dag>,
    state: StateTable,
    executed: Vec<NodeId>,
}

impl SafetyChecker {
    pub fn new(dag: Arc<Dag>) -> Self {
        let n = dag.node_count();
        SafetyChecker {
            dag,
            state: StateTable::new(n),
            executed: Vec::new(),
        }
    }

    pub fn on_start(&mut self, initial_active: &[NodeId]) {
        self.state.reset();
        self.executed.clear();
        for &v in initial_active {
            self.state.activate(v);
        }
    }

    /// Assert `t` is safe at pop time.
    pub fn on_pop(&mut self, t: NodeId) {
        assert_eq!(
            self.state.get(t),
            NodeState::Active,
            "popped {t} in state {:?}",
            self.state.get(t)
        );
        // No active-uncompleted ancestor.
        for v in self.dag.nodes() {
            let st = self.state.get(v);
            if (st == NodeState::Active || st == NodeState::Running)
                && reach::is_ancestor(&self.dag, v, t)
            {
                panic!("unsafe pop: {t} has active-uncompleted ancestor {v}");
            }
        }
        self.state.dispatch(t);
        self.executed.push(t);
    }

    pub fn on_complete(&mut self, v: NodeId, fired: &[NodeId]) {
        self.state.complete(v);
        for &c in fired {
            self.state.activate(c);
        }
    }

    /// Assert at end of run: everything activated was executed exactly once.
    pub fn on_finish(&mut self) {
        assert_eq!(
            self.state.active_unexecuted(),
            0,
            "run finished with unexecuted active tasks"
        );
        assert_eq!(
            self.executed.len(),
            self.state.activated_total(),
            "executed count != activated count"
        );
    }

    /// Number of tasks executed so far.
    pub fn executed_count(&self) -> usize {
        self.executed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incr_dag::DagBuilder;

    fn diamond() -> Arc<Dag> {
        let mut b = DagBuilder::new(4);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn state_table_lifecycle() {
        let mut st = StateTable::new(2);
        assert!(st.activate(NodeId(0)));
        assert!(!st.activate(NodeId(0)));
        assert_eq!(st.active_unexecuted(), 1);
        st.dispatch(NodeId(0));
        assert_eq!(st.get(NodeId(0)), NodeState::Running);
        st.complete(NodeId(0));
        assert_eq!(st.get(NodeId(0)), NodeState::Done);
        assert_eq!(st.active_unexecuted(), 0);
        assert_eq!(st.activated_total(), 1);
    }

    #[test]
    fn exact_greedy_runs_diamond_in_safe_order() {
        let dag = diamond();
        let mut s = ExactGreedy::new(dag.clone());
        let mut check = SafetyChecker::new(dag.clone());
        s.start(&[NodeId(0)]);
        check.on_start(&[NodeId(0)]);
        // Drive serially: node 0 fires both children; they fire node 3.
        let fired: Vec<Vec<NodeId>> = vec![
            vec![NodeId(1), NodeId(2)],
            vec![NodeId(3)],
            vec![NodeId(3)],
            vec![],
        ];
        let mut order = Vec::new();
        while !s.is_quiescent() {
            let t = s.pop_ready().expect("no stall expected");
            check.on_pop(t);
            order.push(t);
            s.on_completed(t, &fired[t.index()]);
            check.on_complete(t, &fired[t.index()]);
        }
        check.on_finish();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], NodeId(0));
        assert_eq!(order[3], NodeId(3));
    }

    #[test]
    fn exact_greedy_offers_independent_actives_together() {
        let dag = diamond();
        let mut s = ExactGreedy::new(dag);
        // Both middle nodes dirty, no data dependency between them.
        s.start(&[NodeId(1), NodeId(2)]);
        let a = s.pop_ready().unwrap();
        let b = s.pop_ready().unwrap();
        assert_ne!(a, b);
        assert!(s.pop_ready().is_none());
    }

    #[test]
    fn exact_greedy_blocks_descendant_until_ancestor_done() {
        let dag = diamond();
        let mut s = ExactGreedy::new(dag);
        s.start(&[NodeId(1), NodeId(3)]);
        let first = s.pop_ready().unwrap();
        assert_eq!(first, NodeId(1), "3 must wait for its active ancestor 1");
        assert!(s.pop_ready().is_none());
        s.on_completed(NodeId(1), &[]);
        assert_eq!(s.pop_ready(), Some(NodeId(3)));
        s.on_completed(NodeId(3), &[]);
        assert!(s.is_quiescent());
    }

    #[test]
    #[should_panic(expected = "unsafe pop")]
    fn safety_checker_catches_unsafe_pop() {
        let dag = diamond();
        let mut check = SafetyChecker::new(dag);
        check.on_start(&[NodeId(1), NodeId(3)]);
        check.on_pop(NodeId(3)); // 1 is an active uncompleted ancestor
    }
}
