//! The scheduler protocol shared by every algorithm in this crate, plus a
//! reference *exact-readiness* scheduler used as ground truth in tests.
//!
//! The environment (event simulator, step simulator, threaded runtime, or
//! the Datalog engine) drives a scheduler through three entry points:
//!
//! 1. [`Scheduler::start`] — delivers the initially-dirty tasks.
//! 2. [`Scheduler::pop_ready`] — called whenever a processor is idle; the
//!    scheduler may do internal work (scans, look-ahead BFS) and must
//!    charge it to its [`CostMeter`].
//! 3. [`Scheduler::on_completed`] — reports an executed task together with
//!    the children whose input actually changed (`fired`), which is how the
//!    hidden active graph `H` is revealed (paper §II-A).
//!
//! # The safety invariant
//!
//! A popped task must be **safe**: active, not yet executed, and with no
//! active-and-uncompleted node among its ancestors in `G` — otherwise it
//! might have to be re-executed, which the model forbids. The
//! [`SafetyChecker`] verifies this invariant against ground-truth
//! reachability and is wired into every simulator run in tests.

use crate::cost::CostMeter;
use incr_dag::reach::{self, NodeSet};
use incr_dag::{Dag, NodeId};
use std::sync::Arc;

/// Lifecycle of a node during one scheduling run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum NodeState {
    /// Not (yet) activated.
    Clean = 0,
    /// Activated, waiting to be deemed safe.
    Active = 1,
    /// Popped by the environment; executing.
    Running = 2,
    /// Execution finished.
    Done = 3,
}

/// The scheduling protocol. See the module docs for the driving contract.
pub trait Scheduler: Send {
    /// Human-readable algorithm name (table row labels).
    fn name(&self) -> &str;

    /// Reset all run state and deliver the initially-activated tasks.
    ///
    /// Implementations are expected to make this O(|active set of the
    /// previous run|), not O(V), so a stream of small updates on a huge
    /// DAG pays per-update cost proportional to the work, realizing
    /// Theorem 2's bound *across* updates (see [`StateTable::reset`]).
    fn start(&mut self, initial_active: &[NodeId]);

    /// Report that `v` finished executing and that the children in `fired`
    /// received changed input (and are therefore now active).
    fn on_completed(&mut self, v: NodeId, fired: &[NodeId]);

    /// Ask for one safe task. `None` means "none known right now" — more
    /// may surface after future completions.
    fn pop_ready(&mut self) -> Option<NodeId>;

    /// Ask for up to `max` safe tasks at once, appended to `out`; returns
    /// how many were added. Semantically identical to calling
    /// [`Scheduler::pop_ready`] in a loop (which is the default impl) —
    /// specialized implementations drain an internal ready structure so
    /// the caller crosses the trait boundary once per wavefront instead
    /// of once per node, and charge one `pops` unit per *batch* rather
    /// than per node (per-node bucket/scan charges are unchanged, so
    /// Theorem 2 cost accounting still holds).
    fn pop_batch(&mut self, out: &mut Vec<NodeId>, max: usize) -> usize {
        let before = out.len();
        while out.len() - before < max {
            match self.pop_ready() {
                Some(t) => out.push(t),
                None => break,
            }
        }
        out.len() - before
    }

    /// Report a whole batch of completions at once. Semantically identical
    /// to calling [`Scheduler::on_completed`] per entry in order (the
    /// default impl does exactly that); exists so batching executors make
    /// one virtual call per flushed completion buffer.
    fn complete_batch(&mut self, batch: &CompletionBatch) {
        for (v, fired) in batch.iter() {
            self.on_completed(v, fired);
        }
    }

    /// True when every activated task has completed.
    fn is_quiescent(&self) -> bool;

    /// Accumulated scheduling cost for this run.
    fn cost(&self) -> CostMeter;

    /// Current run-state memory footprint estimate in bytes (excludes
    /// precomputed structures; see [`Scheduler::precompute_bytes`]).
    fn space_bytes(&self) -> usize;

    /// Memory held by precomputed structures (levels, interval lists).
    fn precompute_bytes(&self) -> usize;

    /// Another scheduler sharing the run (the Hybrid of §V) dispatched `v`;
    /// update bookkeeping so this scheduler never offers `v` itself. The
    /// task still blocks descendants until its completion is reported.
    fn on_external_dispatch(&mut self, v: NodeId);

    /// Named instantaneous levels worth graphing — queue depths, the
    /// level frontier, interval-list size. Sampled by
    /// [`crate::obs::Observed`] after each protocol call when tracing is
    /// on; schedulers with nothing interesting inherit the empty default.
    fn gauges(&self) -> Vec<(&'static str, i64)> {
        Vec::new()
    }
}

/// A flat, reusable buffer of `(node, fired-children)` completions.
///
/// Fired lists are concatenated into one arena (`fired`) with an offsets
/// array (`ends`), so recording a completion never allocates once the
/// buffers have warmed up — the executor's workers fill one of these per
/// dispatch chunk and ship the whole thing to the coordinator.
#[derive(Clone, Debug, Default)]
pub struct CompletionBatch {
    nodes: Vec<NodeId>,
    /// All fired lists back to back; entry `i` owns
    /// `fired[ends[i-1]..ends[i]]`.
    fired: Vec<NodeId>,
    ends: Vec<u32>,
}

impl CompletionBatch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty the batch, keeping capacity (for reuse across flushes).
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.fired.clear();
        self.ends.clear();
    }

    /// Number of completions recorded.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total fired children across all entries (= activations delivered).
    #[inline]
    pub fn total_fired(&self) -> usize {
        self.fired.len()
    }

    /// Record one completion with its fired children.
    pub fn push(&mut self, node: NodeId, fired: &[NodeId]) {
        self.fired.extend_from_slice(fired);
        self.commit(node);
    }

    /// The tail of the fired arena: a task body appends its fired children
    /// here directly (no intermediate Vec), then the caller seals the entry
    /// with [`CompletionBatch::commit`].
    #[inline]
    pub fn fired_buf(&mut self) -> &mut Vec<NodeId> {
        &mut self.fired
    }

    /// Seal an entry for `node` whose fired children were appended to
    /// [`CompletionBatch::fired_buf`] since the previous commit/push.
    pub fn commit(&mut self, node: NodeId) {
        self.nodes.push(node);
        self.ends.push(self.fired.len() as u32);
    }

    /// Entry `i`: the node and its fired-children slice.
    pub fn get(&self, i: usize) -> (NodeId, &[NodeId]) {
        let lo = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        let hi = self.ends[i] as usize;
        (self.nodes[i], &self.fired[lo..hi])
    }

    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &[NodeId])> {
        (0..self.nodes.len()).map(move |i| self.get(i))
    }
}

/// Shared per-node state table with the bookkeeping every scheduler needs.
///
/// Reset is O(1) via generation stamps: a slot's state is only believed
/// when its stamp matches the current generation, so `reset` just bumps
/// the generation and every node reads `Clean` again. This is what makes
/// `start()` on update *i+1* cost O(|active_i|) instead of O(V).
#[derive(Clone, Debug)]
pub struct StateTable {
    states: Vec<NodeState>,
    /// `stamp[i] == generation` ⇔ `states[i]` belongs to the current run.
    stamp: Vec<u32>,
    generation: u32,
    active_unexecuted: usize,
    activated_total: usize,
}

impl StateTable {
    pub fn new(n: usize) -> Self {
        StateTable {
            states: vec![NodeState::Clean; n],
            stamp: vec![0; n],
            generation: 1,
            active_unexecuted: 0,
            activated_total: 0,
        }
    }

    /// O(1) (amortized): bump the generation so every slot reads `Clean`.
    /// On u32 wrap-around the stamp array is rewritten once — one O(V)
    /// pass every 2³²−1 resets.
    pub fn reset(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamp.fill(0);
            self.generation = 1;
        }
        self.active_unexecuted = 0;
        self.activated_total = 0;
    }

    /// Current generation. Schedulers keeping their own stamped side
    /// tables compare against this; `generation() == 1` right after a
    /// reset signals wrap-around (their stamps must be rewritten too).
    #[inline]
    pub fn generation(&self) -> u32 {
        self.generation
    }

    #[inline]
    pub fn get(&self, v: NodeId) -> NodeState {
        if self.stamp[v.index()] == self.generation {
            self.states[v.index()]
        } else {
            NodeState::Clean
        }
    }

    /// Mark `v` active; returns true if this is a new activation.
    /// Panics (debug) if `v` already ran — activation-after-execution is a
    /// model violation (the task would need re-execution).
    pub fn activate(&mut self, v: NodeId) -> bool {
        match self.get(v) {
            NodeState::Clean => {
                self.states[v.index()] = NodeState::Active;
                self.stamp[v.index()] = self.generation;
                self.active_unexecuted += 1;
                self.activated_total += 1;
                true
            }
            NodeState::Active => false,
            s => {
                debug_assert!(false, "activated {v} in state {s:?} (already executed)");
                false
            }
        }
    }

    /// Transition Active -> Running when the environment pops `v`.
    pub fn dispatch(&mut self, v: NodeId) {
        debug_assert_eq!(self.get(v), NodeState::Active, "double pop of {v}");
        self.states[v.index()] = NodeState::Running;
        self.stamp[v.index()] = self.generation;
    }

    /// Transition Running -> Done.
    pub fn complete(&mut self, v: NodeId) {
        debug_assert_eq!(self.get(v), NodeState::Running, "completion of non-running {v}");
        self.states[v.index()] = NodeState::Done;
        self.stamp[v.index()] = self.generation;
        self.active_unexecuted -= 1;
    }

    /// Activated tasks not yet completed (includes running ones): the
    /// scheduler is quiescent when this hits zero.
    #[inline]
    pub fn active_unexecuted(&self) -> usize {
        self.active_unexecuted
    }

    /// Total activations over the run (`n = |W|` once quiescent).
    #[inline]
    pub fn activated_total(&self) -> usize {
        self.activated_total
    }

    /// Bytes held by the table itself (state byte + stamp word per node).
    pub fn bytes(&self) -> usize {
        self.states.len()
            * (std::mem::size_of::<NodeState>() + std::mem::size_of::<u32>())
    }
}

/// Reference scheduler with *exact* readiness: a task is offered as soon
/// as no active-uncompleted node is its ancestor, computed from ground
/// truth reachability (precomputed descendant bitsets). It is the
/// quality ceiling for greedy schedules — the LogicBlox baseline matches
/// its decisions, just with different discovery cost — and serves as the
/// "optimal scheduler" comparator of the Figure 2 analysis, where greedy
/// exact readiness achieves the `Θ(M + L)` schedule.
///
/// Memory is `O(V²/64)` bits; use on test- and bench-scale instances only.
pub struct ExactGreedy {
    dag: Arc<Dag>,
    /// descendants[a] as a bitset, precomputed.
    descendants: Vec<NodeSet>,
    state: StateTable,
    /// Active tasks currently blocked (superset; re-filtered on pops).
    blocked: Vec<NodeId>,
    ready: Vec<NodeId>,
    /// Active-uncompleted nodes, list + membership for the readiness test.
    blockers: Vec<NodeId>,
    cost: CostMeter,
}

impl ExactGreedy {
    pub fn new(dag: Arc<Dag>) -> Self {
        let descendants = dag
            .nodes()
            .map(|v| reach::descendants(&dag, v))
            .collect();
        let n = dag.node_count();
        ExactGreedy {
            dag,
            descendants,
            state: StateTable::new(n),
            blocked: Vec::new(),
            ready: Vec::new(),
            blockers: Vec::new(),
            cost: CostMeter::default(),
        }
    }

    fn is_safe(&self, t: NodeId) -> bool {
        self.blockers
            .iter()
            .all(|&a| a == t || !self.descendants[a.index()].contains(t))
    }

    /// Re-derive the ready set from scratch (exact, eager).
    fn refresh(&mut self) {
        let mut still_blocked = Vec::new();
        let blocked = std::mem::take(&mut self.blocked);
        for t in blocked {
            if self.state.get(t) != NodeState::Active {
                continue;
            }
            if self.is_safe(t) {
                self.ready.push(t);
            } else {
                still_blocked.push(t);
            }
        }
        self.blocked = still_blocked;
    }
}

impl Scheduler for ExactGreedy {
    fn name(&self) -> &str {
        "ExactGreedy"
    }

    fn start(&mut self, initial_active: &[NodeId]) {
        self.state.reset();
        self.blocked.clear();
        self.ready.clear();
        self.blockers.clear();
        self.cost = CostMeter::default();
        for &v in initial_active {
            if self.state.activate(v) {
                self.cost.activations += 1;
                self.blocked.push(v);
                self.blockers.push(v);
            }
        }
        self.refresh();
    }

    fn on_completed(&mut self, v: NodeId, fired: &[NodeId]) {
        self.cost.completions += 1;
        self.state.complete(v);
        self.blockers.retain(|&b| b != v);
        for &c in fired {
            if self.state.activate(c) {
                self.cost.activations += 1;
                self.blocked.push(c);
                self.blockers.push(c);
            }
        }
        self.refresh();
    }

    fn pop_ready(&mut self) -> Option<NodeId> {
        self.cost.pops += 1;
        while let Some(t) = self.ready.pop() {
            // Skip entries dispatched externally (hybrid runs).
            if self.state.get(t) == NodeState::Active {
                self.state.dispatch(t);
                return Some(t);
            }
        }
        None
    }

    fn pop_batch(&mut self, out: &mut Vec<NodeId>, max: usize) -> usize {
        self.cost.pops += 1;
        let before = out.len();
        while out.len() - before < max {
            let Some(t) = self.ready.pop() else { break };
            if self.state.get(t) == NodeState::Active {
                self.state.dispatch(t);
                out.push(t);
            }
        }
        out.len() - before
    }

    fn is_quiescent(&self) -> bool {
        self.state.active_unexecuted() == 0
    }

    fn cost(&self) -> CostMeter {
        self.cost
    }

    fn space_bytes(&self) -> usize {
        self.state.bytes()
            + (self.blocked.len() + self.ready.len() + self.blockers.len())
                * std::mem::size_of::<NodeId>()
    }

    fn precompute_bytes(&self) -> usize {
        // V bitsets of V bits.
        self.dag.node_count() * self.dag.node_count() / 8
    }

    fn on_external_dispatch(&mut self, v: NodeId) {
        if self.state.get(v) == NodeState::Active {
            self.state.dispatch(v);
        }
    }
}

/// Ground-truth auditor: wraps the environment side and asserts the safety
/// invariant for every popped task, that no task is popped twice, and (at
/// quiescence) that exactly the active closure was executed.
pub struct SafetyChecker {
    dag: Arc<Dag>,
    state: StateTable,
    executed: Vec<NodeId>,
}

impl SafetyChecker {
    pub fn new(dag: Arc<Dag>) -> Self {
        let n = dag.node_count();
        SafetyChecker {
            dag,
            state: StateTable::new(n),
            executed: Vec::new(),
        }
    }

    pub fn on_start(&mut self, initial_active: &[NodeId]) {
        self.state.reset();
        self.executed.clear();
        for &v in initial_active {
            self.state.activate(v);
        }
    }

    /// Assert `t` is safe at pop time.
    pub fn on_pop(&mut self, t: NodeId) {
        assert_eq!(
            self.state.get(t),
            NodeState::Active,
            "popped {t} in state {:?}",
            self.state.get(t)
        );
        // No active-uncompleted ancestor.
        for v in self.dag.nodes() {
            let st = self.state.get(v);
            if (st == NodeState::Active || st == NodeState::Running)
                && reach::is_ancestor(&self.dag, v, t)
            {
                panic!("unsafe pop: {t} has active-uncompleted ancestor {v}");
            }
        }
        self.state.dispatch(t);
        self.executed.push(t);
    }

    pub fn on_complete(&mut self, v: NodeId, fired: &[NodeId]) {
        self.state.complete(v);
        for &c in fired {
            self.state.activate(c);
        }
    }

    /// Assert at end of run: everything activated was executed exactly once.
    pub fn on_finish(&mut self) {
        assert_eq!(
            self.state.active_unexecuted(),
            0,
            "run finished with unexecuted active tasks"
        );
        assert_eq!(
            self.executed.len(),
            self.state.activated_total(),
            "executed count != activated count"
        );
    }

    /// Number of tasks executed so far.
    pub fn executed_count(&self) -> usize {
        self.executed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incr_dag::DagBuilder;

    fn diamond() -> Arc<Dag> {
        let mut b = DagBuilder::new(4);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn state_table_lifecycle() {
        let mut st = StateTable::new(2);
        assert!(st.activate(NodeId(0)));
        assert!(!st.activate(NodeId(0)));
        assert_eq!(st.active_unexecuted(), 1);
        st.dispatch(NodeId(0));
        assert_eq!(st.get(NodeId(0)), NodeState::Running);
        st.complete(NodeId(0));
        assert_eq!(st.get(NodeId(0)), NodeState::Done);
        assert_eq!(st.active_unexecuted(), 0);
        assert_eq!(st.activated_total(), 1);
    }

    #[test]
    fn exact_greedy_runs_diamond_in_safe_order() {
        let dag = diamond();
        let mut s = ExactGreedy::new(dag.clone());
        let mut check = SafetyChecker::new(dag.clone());
        s.start(&[NodeId(0)]);
        check.on_start(&[NodeId(0)]);
        // Drive serially: node 0 fires both children; they fire node 3.
        let fired: Vec<Vec<NodeId>> = vec![
            vec![NodeId(1), NodeId(2)],
            vec![NodeId(3)],
            vec![NodeId(3)],
            vec![],
        ];
        let mut order = Vec::new();
        while !s.is_quiescent() {
            let t = s.pop_ready().expect("no stall expected");
            check.on_pop(t);
            order.push(t);
            s.on_completed(t, &fired[t.index()]);
            check.on_complete(t, &fired[t.index()]);
        }
        check.on_finish();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], NodeId(0));
        assert_eq!(order[3], NodeId(3));
    }

    #[test]
    fn exact_greedy_offers_independent_actives_together() {
        let dag = diamond();
        let mut s = ExactGreedy::new(dag);
        // Both middle nodes dirty, no data dependency between them.
        s.start(&[NodeId(1), NodeId(2)]);
        let a = s.pop_ready().unwrap();
        let b = s.pop_ready().unwrap();
        assert_ne!(a, b);
        assert!(s.pop_ready().is_none());
    }

    #[test]
    fn exact_greedy_blocks_descendant_until_ancestor_done() {
        let dag = diamond();
        let mut s = ExactGreedy::new(dag);
        s.start(&[NodeId(1), NodeId(3)]);
        let first = s.pop_ready().unwrap();
        assert_eq!(first, NodeId(1), "3 must wait for its active ancestor 1");
        assert!(s.pop_ready().is_none());
        s.on_completed(NodeId(1), &[]);
        assert_eq!(s.pop_ready(), Some(NodeId(3)));
        s.on_completed(NodeId(3), &[]);
        assert!(s.is_quiescent());
    }

    #[test]
    #[should_panic(expected = "unsafe pop")]
    fn safety_checker_catches_unsafe_pop() {
        let dag = diamond();
        let mut check = SafetyChecker::new(dag);
        check.on_start(&[NodeId(1), NodeId(3)]);
        check.on_pop(NodeId(3)); // 1 is an active uncompleted ancestor
    }

    #[test]
    fn state_table_reset_is_generational() {
        let mut st = StateTable::new(3);
        st.activate(NodeId(0));
        st.dispatch(NodeId(0));
        st.complete(NodeId(0));
        st.activate(NodeId(1));
        st.reset();
        // Every slot reads Clean without any per-slot write.
        for i in 0..3 {
            assert_eq!(st.get(NodeId(i)), NodeState::Clean);
        }
        assert_eq!(st.active_unexecuted(), 0);
        assert_eq!(st.activated_total(), 0);
        // Full lifecycle works again in the new generation.
        assert!(st.activate(NodeId(0)));
        st.dispatch(NodeId(0));
        st.complete(NodeId(0));
        assert_eq!(st.get(NodeId(0)), NodeState::Done);
    }

    #[test]
    fn state_table_generation_wrap_rewrites_stamps() {
        let mut st = StateTable::new(2);
        st.activate(NodeId(0));
        // Force the wrap path directly.
        st.generation = u32::MAX;
        st.reset();
        assert_eq!(st.generation(), 1);
        assert_eq!(st.get(NodeId(0)), NodeState::Clean);
        assert!(st.activate(NodeId(0)));
        assert_eq!(st.get(NodeId(0)), NodeState::Active);
    }

    #[test]
    fn state_table_bytes_counts_states_and_stamps() {
        let st = StateTable::new(100);
        // 1 state byte + 4 stamp bytes per node: bytes() must account for
        // everything the table actually holds per node.
        assert_eq!(st.bytes(), 100 * 5);
    }

    #[test]
    fn completion_batch_roundtrip() {
        let mut b = CompletionBatch::new();
        b.push(NodeId(0), &[NodeId(1), NodeId(2)]);
        b.fired_buf().push(NodeId(3));
        b.commit(NodeId(1));
        b.push(NodeId(2), &[]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.total_fired(), 3);
        let entries: Vec<(NodeId, Vec<NodeId>)> =
            b.iter().map(|(v, f)| (v, f.to_vec())).collect();
        assert_eq!(
            entries,
            vec![
                (NodeId(0), vec![NodeId(1), NodeId(2)]),
                (NodeId(1), vec![NodeId(3)]),
                (NodeId(2), vec![]),
            ]
        );
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.total_fired(), 0);
    }

    #[test]
    fn exact_greedy_pop_batch_matches_serial_pops() {
        let dag = diamond();
        let mut s = ExactGreedy::new(dag.clone());
        s.start(&[NodeId(1), NodeId(2)]);
        let mut batch = Vec::new();
        assert_eq!(s.pop_batch(&mut batch, 8), 2);
        let mut sorted = batch.clone();
        sorted.sort();
        assert_eq!(sorted, vec![NodeId(1), NodeId(2)]);
        assert_eq!(s.pop_batch(&mut batch, 8), 0);
        let mut done = CompletionBatch::new();
        done.push(NodeId(1), &[NodeId(3)]);
        done.push(NodeId(2), &[NodeId(3)]);
        s.complete_batch(&done);
        assert_eq!(s.pop_ready(), Some(NodeId(3)));
        s.on_completed(NodeId(3), &[]);
        assert!(s.is_quiescent());
    }
}
