//! Cross-scheduler property tests: on random instances, every scheduler
//! must execute exactly the active closure, exactly once, safely — and the
//! cost/behaviour claims that differentiate them must hold.

use crate::instance::Instance;
use crate::scheduler::{CompletionBatch, SafetyChecker, Scheduler};
use crate::SchedulerKind;
use incr_dag::{random, Dag, NodeId};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::Arc;

/// Random instance: random DAG + random firing behaviour + random dirty set.
fn arb_instance() -> impl Strategy<Value = Instance> {
    (2usize..28, 0.05f64..0.4, any::<u64>(), 1usize..4).prop_map(|(n, p, seed, dirt)| {
        let dag: Arc<Dag> = Arc::new(random::gnp_ordered(n, p, seed));
        let mut inst = Instance::unit(dag.clone(), Vec::new());
        // Deterministic pseudo-random firing: node v fires child c iff a
        // hash of (seed, v, c) is even-ish.
        for v in dag.nodes() {
            let fires: Vec<NodeId> = dag
                .children(v)
                .iter()
                .copied()
                .filter(|c| !(seed ^ (v.0 as u64 * 31 + c.0 as u64 * 17)).is_multiple_of(3))
                .collect();
            inst.fired[v.index()] = fires;
        }
        // Dirty a few sources (plus possibly interior nodes).
        let mut initial: Vec<NodeId> = dag.sources().take(dirt).collect();
        if initial.is_empty() {
            initial.push(NodeId(0));
        }
        inst.initial_active = initial;
        inst
    })
}

/// Drive a scheduler over an instance with `p` in-flight slots, FIFO
/// completions, auditing with the SafetyChecker. Returns executed tasks in
/// order.
fn drive(s: &mut dyn Scheduler, inst: &Instance, p: usize) -> Vec<NodeId> {
    let mut check = SafetyChecker::new(inst.dag.clone());
    s.start(&inst.initial_active);
    check.on_start(&inst.initial_active);
    let mut in_flight: VecDeque<NodeId> = VecDeque::new();
    let mut order = Vec::new();
    loop {
        while in_flight.len() < p {
            match s.pop_ready() {
                Some(t) => {
                    check.on_pop(t);
                    order.push(t);
                    in_flight.push_back(t);
                }
                None => break,
            }
        }
        let Some(t) = in_flight.pop_front() else {
            break;
        };
        let fired = &inst.fired[t.index()];
        s.on_completed(t, fired);
        check.on_complete(t, fired);
    }
    check.on_finish();
    assert!(s.is_quiescent(), "{} not quiescent at end", s.name());
    order
}

/// Drive a scheduler through the *batched* protocol (`pop_batch` +
/// `complete_batch`), audited by the SafetyChecker exactly like the serial
/// driver. In-flight tasks complete in FIFO order, whole chunks at a time.
fn drive_batched(
    s: &mut dyn Scheduler,
    inst: &Instance,
    p: usize,
    batch_max: usize,
) -> Vec<NodeId> {
    let mut check = SafetyChecker::new(inst.dag.clone());
    s.start(&inst.initial_active);
    check.on_start(&inst.initial_active);
    let mut in_flight: VecDeque<NodeId> = VecDeque::new();
    let mut order = Vec::new();
    let mut popped = Vec::new();
    let mut done = CompletionBatch::new();
    loop {
        while in_flight.len() < p {
            popped.clear();
            if s.pop_batch(&mut popped, batch_max.min(p - in_flight.len())) == 0 {
                break;
            }
            for &t in &popped {
                check.on_pop(t);
                order.push(t);
                in_flight.push_back(t);
            }
        }
        if in_flight.is_empty() {
            break;
        }
        // Flush up to batch_max completions in one complete_batch call.
        done.clear();
        while done.len() < batch_max {
            let Some(t) = in_flight.pop_front() else { break };
            done.push(t, &inst.fired[t.index()]);
        }
        for (t, fired) in done.iter() {
            check.on_complete(t, fired);
        }
        s.complete_batch(&done);
    }
    check.on_finish();
    assert!(s.is_quiescent(), "{} not quiescent at end", s.name());
    order
}

const ALL_KINDS: [SchedulerKind; 8] = [
    SchedulerKind::LevelBased,
    SchedulerKind::Lookahead(3),
    SchedulerKind::Lookahead(100),
    SchedulerKind::LogicBlox,
    SchedulerKind::LogicBloxFaithful,
    SchedulerKind::SignalPropagation,
    SchedulerKind::Hybrid,
    SchedulerKind::ExactGreedy,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Each scheduler is safe (audited), executes exactly the active
    /// closure, and terminates — for serial and parallel drivers.
    #[test]
    fn all_schedulers_execute_exactly_the_active_closure(
        inst in arb_instance(),
        p in 1usize..5,
    ) {
        let closure = inst.active_closure();
        for kind in ALL_KINDS {
            let mut s = kind.build(inst.dag.clone());
            let order = drive(s.as_mut(), &inst, p);
            prop_assert_eq!(order.len(), closure.len(),
                "{:?} executed {} of {} active tasks", kind, order.len(), closure.len());
            for t in &order {
                prop_assert!(closure.contains(*t), "{:?} executed inactive {}", kind, t);
            }
        }
    }

    /// The two LogicBlox scan modes make identical decisions under an
    /// identical driver.
    #[test]
    fn logicblox_scan_modes_agree(inst in arb_instance(), p in 1usize..5) {
        let mut a = SchedulerKind::LogicBloxFaithful.build(inst.dag.clone());
        let mut b = SchedulerKind::LogicBlox.build(inst.dag.clone());
        let oa = drive(a.as_mut(), &inst, p);
        let ob = drive(b.as_mut(), &inst, p);
        prop_assert_eq!(oa, ob);
    }

    /// Theorem 2: LevelBased scheduling work is O(n + L) — concretely,
    /// bucket operations ≤ 3n + L and queries/messages are zero.
    #[test]
    fn levelbased_cost_is_linear(inst in arb_instance(), p in 1usize..5) {
        let mut s = crate::LevelBased::new(inst.dag.clone());
        let order = drive(&mut s, &inst, p);
        let n = order.len() as u64;
        let l = inst.dag.num_levels() as u64;
        let c = s.cost();
        prop_assert!(c.bucket_ops <= 3 * n + l + 1,
            "bucket_ops {} > 3n+L = {}", c.bucket_ops, 3 * n + l);
        prop_assert_eq!(c.ancestor_queries, 0);
        prop_assert_eq!(c.messages, 0);
        // Space: peak tracked active tasks never exceeds n.
        prop_assert!(s.peak_tracked() as u64 <= n);
    }

    /// Signal propagation sends exactly one message per edge reachable in
    /// the settle cascade — bounded by |E| overall.
    #[test]
    fn signal_messages_bounded_by_edges(inst in arb_instance(), p in 1usize..5) {
        let mut s = crate::SignalPropagation::new(inst.dag.clone());
        drive(&mut s, &inst, p);
        prop_assert!(s.cost().messages <= inst.dag.edge_count() as u64);
    }

    /// CostModeled charges are within a constant factor of the Faithful
    /// charges on the same run (they model the same naive loop).
    #[test]
    fn costmodel_tracks_faithful_charges(inst in arb_instance()) {
        let mut a = crate::LogicBlox::with_mode(inst.dag.clone(), crate::ScanMode::Faithful);
        let mut b = crate::LogicBlox::with_mode(inst.dag.clone(), crate::ScanMode::CostModeled);
        drive(&mut a, &inst, 2);
        drive(&mut b, &inst, 2);
        let qa = a.cost().ancestor_queries;
        let qb = b.cost().ancestor_queries;
        if qa >= 20 {
            // Small counts are all constant-factor noise; compare real runs.
            let ratio = qb as f64 / qa as f64;
            prop_assert!((0.2..=5.0).contains(&ratio),
                "modeled {} vs faithful {} (ratio {:.2})", qb, qa, ratio);
        }
    }

    /// The batched protocol (`pop_batch` + `complete_batch`) executes the
    /// same set of tasks as the one-at-a-time path for every scheduler,
    /// and every batched schedule passes the SafetyChecker's greedy-
    /// validity audit (asserted inside `drive_batched`).
    #[test]
    fn batched_protocol_matches_serial_executed_set(
        inst in arb_instance(),
        p in 1usize..5,
        batch_max in 1usize..9,
    ) {
        for kind in ALL_KINDS {
            let mut serial = kind.build(inst.dag.clone());
            let mut batched = kind.build(inst.dag.clone());
            let os = drive(serial.as_mut(), &inst, p);
            let ob = drive_batched(batched.as_mut(), &inst, p, batch_max);
            let mut a: Vec<u32> = os.iter().map(|v| v.0).collect();
            let mut b: Vec<u32> = ob.iter().map(|v| v.0).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b,
                "{:?}: batched executed set diverges from serial (p={}, batch={})",
                kind, p, batch_max);
        }
    }

    /// Restarts are cheap *and correct*: driving the same instance twice
    /// through one scheduler object gives the identical executed set and
    /// identical charged cost both times (generation stamps must make the
    /// second run indistinguishable from the first).
    #[test]
    fn restarted_run_is_identical(inst in arb_instance(), p in 1usize..5) {
        for kind in ALL_KINDS {
            let mut s = kind.build(inst.dag.clone());
            let first = drive(s.as_mut(), &inst, p);
            let first_cost = s.cost();
            let second = drive(s.as_mut(), &inst, p);
            prop_assert_eq!(&first, &second, "{:?}: restart changed decisions", kind);
            prop_assert_eq!(first_cost, s.cost(), "{:?}: restart changed costs", kind);
        }
    }

    /// Coalesced activation: starting once on the stamped union of k
    /// dirty sets executes exactly the union of the k serial runs'
    /// executed sets — each node at most once — and passes the safety
    /// audit, for every scheduler. (Active closures distribute over
    /// union, which is what makes stream coalescing sound.)
    #[test]
    fn coalesced_start_equals_union_of_serial_runs(
        inst in arb_instance(),
        p in 1usize..5,
        extra_seed in any::<u64>(),
        k in 2usize..5,
    ) {
        // Derive k dirty sets from the instance's nodes.
        let n = inst.dag.node_count() as u64;
        let sets: Vec<Vec<NodeId>> = (0..k)
            .map(|i| {
                let mut s: Vec<NodeId> = inst
                    .dag
                    .nodes()
                    .filter(|v| {
                        (extra_seed ^ (v.0 as u64 * 131 + i as u64 * 977)) % n.max(4) < 2
                    })
                    .collect();
                if s.is_empty() {
                    s.push(NodeId((extra_seed.wrapping_mul(i as u64 + 1) % n) as u32));
                }
                s
            })
            .collect();
        let mut coalescer = crate::stream::ActivationCoalescer::new(inst.dag.node_count());
        let mut merged = Vec::new();
        let refs: Vec<&[NodeId]> = sets.iter().map(Vec::as_slice).collect();
        coalescer.union_into(&refs, &mut merged);
        for kind in ALL_KINDS {
            // Serial: k separate runs through one scheduler object.
            let mut s = kind.build(inst.dag.clone());
            let mut serial_union: Vec<u32> = Vec::new();
            for set in &sets {
                let mut sub = inst.clone();
                sub.initial_active = set.clone();
                serial_union.extend(drive(s.as_mut(), &sub, p).iter().map(|v| v.0));
            }
            serial_union.sort_unstable();
            serial_union.dedup();
            // Coalesced: one run on the union (audited inside `drive`).
            let mut c = kind.build(inst.dag.clone());
            let mut sub = inst.clone();
            sub.initial_active = merged.clone();
            let coalesced = drive(c.as_mut(), &sub, p);
            let mut once = std::collections::HashSet::new();
            for v in &coalesced {
                prop_assert!(once.insert(v.0),
                    "{:?}: node {} executed twice in one coalesced run", kind, v);
            }
            let mut co: Vec<u32> = coalesced.iter().map(|v| v.0).collect();
            co.sort_unstable();
            prop_assert_eq!(co, serial_union,
                "{:?}: coalesced executed set diverges from serial union", kind);
        }
    }

    /// The hybrid executes everything the exact oracle executes, with
    /// LevelBased-side cost staying linear.
    #[test]
    fn hybrid_matches_oracle_coverage(inst in arb_instance(), p in 1usize..5) {
        let mut h = crate::Hybrid::new(inst.dag.clone());
        let oh = drive(&mut h, &inst, p);
        let mut e = crate::ExactGreedy::new(inst.dag.clone());
        let oe = drive(&mut e, &inst, p);
        let mut a: Vec<u32> = oh.iter().map(|v| v.0).collect();
        let mut b: Vec<u32> = oe.iter().map(|v| v.0).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        let n = oh.len() as u64;
        let l = inst.dag.num_levels() as u64;
        prop_assert!(h.levelbased_cost().bucket_ops <= 3 * n + l + 1);
    }
}
