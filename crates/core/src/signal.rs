//! Brute-force signal propagation (paper §II-C, second baseline).
//!
//! No precomputation at all. Every node waits for a signal ("changed" or
//! "no change") from *every* parent; once all parents have signalled, an
//! unchanged node immediately relays "no change" to its children, while a
//! changed (active) node becomes ready and relays only after it executes.
//! Total scheduling work is `Θ(V + E)` messages per run — independent of
//! how few nodes are actually active, which is exactly the inefficiency
//! the paper calls out.

use crate::cost::CostMeter;
use crate::scheduler::{NodeState, Scheduler, StateTable};
use incr_dag::{Dag, NodeId};
use std::sync::Arc;

/// The signal-propagation scheduler.
pub struct SignalPropagation {
    dag: Arc<Dag>,
    state: StateTable,
    /// Parents that have not yet signalled, per node.
    pending: Vec<u32>,
    /// Input changed (some parent fired, or initially dirty).
    changed: Vec<bool>,
    /// Relay cascade worklist (unchanged nodes with all signals in).
    relay: Vec<NodeId>,
    ready: Vec<NodeId>,
    cost: CostMeter,
    peak_tracked: usize,
}

impl SignalPropagation {
    pub fn new(dag: Arc<Dag>) -> Self {
        let n = dag.node_count();
        SignalPropagation {
            dag,
            state: StateTable::new(n),
            pending: vec![0; n],
            changed: vec![false; n],
            relay: Vec::new(),
            ready: Vec::new(),
            cost: CostMeter::default(),
            peak_tracked: 0,
        }
    }

    /// All of `v`'s parents have signalled; classify it.
    fn settle(&mut self, v: NodeId) {
        debug_assert_eq!(self.pending[v.index()], 0);
        if self.changed[v.index()] {
            self.ready.push(v);
            self.peak_tracked = self.peak_tracked.max(self.ready.len());
        } else {
            // Unchanged: relay "no change" onward immediately.
            self.relay.push(v);
        }
    }

    /// Send `v`'s signal to all children (one message per edge), settling
    /// any child whose last signal just arrived; then drain the cascade of
    /// no-change relays.
    fn send_signals(&mut self, v: NodeId) {
        self.cost.messages += self.dag.out_degree(v) as u64;
        let len = self.dag.children(v).len();
        for i in 0..len {
            let c = self.dag.children(v)[i];
            self.pending[c.index()] -= 1;
            if self.pending[c.index()] == 0 {
                self.settle(c);
            }
        }
        self.drain_relays();
    }

    fn drain_relays(&mut self) {
        while let Some(u) = self.relay.pop() {
            self.cost.messages += self.dag.out_degree(u) as u64;
            let len = self.dag.children(u).len();
            for i in 0..len {
                let c = self.dag.children(u)[i];
                self.pending[c.index()] -= 1;
                if self.pending[c.index()] == 0 {
                    self.settle(c);
                }
            }
        }
    }
}

impl Scheduler for SignalPropagation {
    fn name(&self) -> &str {
        "SignalPropagation"
    }

    // Unlike the level-based family, `start` here is inherently Θ(V + E):
    // the algorithm itself makes every node await a signal from every
    // parent, so the per-node reinitialization below *is* the algorithm's
    // cost, not bookkeeping overhead — exactly the V-dependence the paper
    // holds against this baseline.
    fn start(&mut self, initial_active: &[NodeId]) {
        let n = self.dag.node_count();
        self.state.reset();
        self.relay.clear();
        self.ready.clear();
        self.cost = CostMeter::default();
        self.peak_tracked = 0;
        for i in 0..n {
            self.pending[i] = self.dag.in_degree(NodeId(i as u32)) as u32;
            self.changed[i] = false;
        }
        for &v in initial_active {
            if self.state.activate(v) {
                self.cost.activations += 1;
            }
            self.changed[v.index()] = true;
        }
        // Kick off: every source has all (zero) signals in.
        for i in 0..n {
            let v = NodeId(i as u32);
            if self.pending[i] == 0 {
                self.settle(v);
            }
        }
        self.drain_relays();
    }

    fn on_completed(&mut self, v: NodeId, fired: &[NodeId]) {
        self.cost.completions += 1;
        self.state.complete(v);
        for &c in fired {
            if self.state.activate(c) {
                self.cost.activations += 1;
            }
            self.changed[c.index()] = true;
        }
        self.send_signals(v);
    }

    fn pop_ready(&mut self) -> Option<NodeId> {
        self.cost.pops += 1;
        while let Some(t) = self.ready.pop() {
            if self.state.get(t) == NodeState::Active {
                self.state.dispatch(t);
                return Some(t);
            }
        }
        None
    }

    fn pop_batch(&mut self, out: &mut Vec<NodeId>, max: usize) -> usize {
        self.cost.pops += 1;
        let before = out.len();
        while out.len() - before < max {
            let Some(t) = self.ready.pop() else { break };
            if self.state.get(t) == NodeState::Active {
                self.state.dispatch(t);
                out.push(t);
            }
        }
        out.len() - before
    }

    fn is_quiescent(&self) -> bool {
        self.state.active_unexecuted() == 0
    }

    fn cost(&self) -> CostMeter {
        self.cost
    }

    fn space_bytes(&self) -> usize {
        self.pending.len() * std::mem::size_of::<u32>()
            + self.changed.len()
            + (self.relay.len() + self.ready.len()) * std::mem::size_of::<NodeId>()
            + self.state.bytes()
    }

    fn gauges(&self) -> Vec<(&'static str, i64)> {
        vec![
            ("sig.ready_depth", self.ready.len() as i64),
            ("sig.relay_depth", self.relay.len() as i64),
        ]
    }

    fn precompute_bytes(&self) -> usize {
        0
    }

    fn on_external_dispatch(&mut self, v: NodeId) {
        if self.state.get(v) == NodeState::Active {
            self.state.dispatch(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incr_dag::DagBuilder;

    /// 0 -> 1 -> 3, 2 -> 3 (3 waits for both branches).
    fn vee() -> Arc<Dag> {
        let mut b = DagBuilder::new(4);
        for (u, v) in [(0, 1), (1, 3), (2, 3)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn inactive_sources_relay_immediately() {
        let mut s = SignalPropagation::new(vee());
        // Only source 0 dirty; source 2 relays no-change at start, so node
        // 3 only waits on the active branch.
        s.start(&[NodeId(0)]);
        assert_eq!(s.pop_ready(), Some(NodeId(0)));
        assert!(s.pop_ready().is_none());
        s.on_completed(NodeId(0), &[NodeId(1)]);
        assert_eq!(s.pop_ready(), Some(NodeId(1)));
        s.on_completed(NodeId(1), &[NodeId(3)]);
        assert_eq!(s.pop_ready(), Some(NodeId(3)));
        s.on_completed(NodeId(3), &[]);
        assert!(s.is_quiescent());
    }

    #[test]
    fn unchanged_output_stops_cascade() {
        let mut s = SignalPropagation::new(vee());
        s.start(&[NodeId(0)]);
        let t = s.pop_ready().unwrap();
        // Node 0 runs but its output does not change: nothing downstream
        // activates, and the no-change signal releases the chain.
        s.on_completed(t, &[]);
        assert!(s.pop_ready().is_none());
        assert!(s.is_quiescent());
    }

    #[test]
    fn message_count_is_theta_edges() {
        let mut s = SignalPropagation::new(vee());
        s.start(&[NodeId(0)]);
        while let Some(t) = s.pop_ready() {
            let fired: Vec<NodeId> = s.dag.children(t).to_vec();
            s.on_completed(t, &fired);
        }
        // Every edge carries exactly one signal.
        assert_eq!(s.cost().messages, s.dag.edge_count() as u64);
    }

    #[test]
    fn node_waits_for_all_parents_even_inactive_ones() {
        // 0 -> 2, 1 -> 2; only 0 dirty, 1 clean. 2 must not be offered
        // before 1's no-change relay, which happens at start.
        let mut b = DagBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(2));
        b.add_edge(NodeId(1), NodeId(2));
        let mut s = SignalPropagation::new(Arc::new(b.build().unwrap()));
        s.start(&[NodeId(0)]);
        assert_eq!(s.pop_ready(), Some(NodeId(0)));
        s.on_completed(NodeId(0), &[NodeId(2)]);
        assert_eq!(s.pop_ready(), Some(NodeId(2)));
        s.on_completed(NodeId(2), &[]);
        assert!(s.is_quiescent());
    }
}
