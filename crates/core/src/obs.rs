//! Observability wrapper for schedulers.
//!
//! [`Observed`] wraps any [`Scheduler`] and, when `incr_obs` tracing is
//! enabled, emits a real-time span (category `"sched"`) around every
//! `start`/`pop_ready`/`on_completed` call and samples the scheduler's
//! [`Scheduler::gauges`] — queue depths, the level frontier, interval-list
//! size — as Perfetto counter tracks and registry gauges (so peak values
//! survive into metric snapshots). Protocol-level totals (`sched.pops`,
//! `sched.completions`, `sched.activations`) are always counted; those are
//! single relaxed atomic adds. With tracing disabled every other emit site
//! reduces to one relaxed load, so wrapping costs next to nothing — the
//! `obs_overhead` bench in `incr-bench` checks exactly this.

use crate::cost::CostMeter;
use crate::scheduler::{CompletionBatch, Scheduler};
use incr_obs::{trace, Counter};
use incr_dag::NodeId;
use std::sync::Arc;

/// Sample gauges on every Nth scheduler call (plus the first): dense
/// enough for Perfetto counter tracks, sparse enough that million-task
/// runs don't exhaust the per-thread trace buffer.
const GAUGE_SAMPLE_EVERY: u32 = 16;

/// A scheduler decorated with spans, gauges and counters.
pub struct Observed {
    inner: Box<dyn Scheduler>,
    pops: Arc<Counter>,
    completions: Arc<Counter>,
    activations: Arc<Counter>,
    batch_pops: Arc<Counter>,
    batch_popped_tasks: Arc<Counter>,
    gauge_tick: u32,
}

impl Observed {
    pub fn new(inner: Box<dyn Scheduler>) -> Observed {
        let r = incr_obs::registry();
        Observed {
            pops: r.counter("sched.pops"),
            completions: r.counter("sched.completions"),
            activations: r.counter("sched.activations"),
            batch_pops: r.counter("sched.batch_pops"),
            batch_popped_tasks: r.counter("sched.batch_popped_tasks"),
            gauge_tick: 0,
            inner,
        }
    }

    /// Unwrap back to the inner scheduler.
    pub fn into_inner(self) -> Box<dyn Scheduler> {
        self.inner
    }

    /// Sample every gauge the inner scheduler exposes into the metrics
    /// registry (for peaks) and as Perfetto counter tracks. Decimated to
    /// one sample per [`GAUGE_SAMPLE_EVERY`] calls.
    fn sample_gauges(&mut self) {
        if !trace::enabled() {
            return;
        }
        self.gauge_tick = self.gauge_tick.wrapping_add(1);
        if self.gauge_tick % GAUGE_SAMPLE_EVERY != 1 {
            return;
        }
        let r = incr_obs::registry();
        for (name, v) in self.inner.gauges() {
            r.gauge(name).set(v);
            trace::counter("sched", name, v as f64);
        }
    }
}

impl Scheduler for Observed {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn start(&mut self, initial_active: &[NodeId]) {
        let span = trace::span_with(
            "sched",
            "sched.start",
            vec![("initial_active", initial_active.len().into())],
        );
        self.inner.start(initial_active);
        drop(span);
        self.activations.add(initial_active.len() as u64);
        self.sample_gauges();
    }

    fn on_completed(&mut self, v: NodeId, fired: &[NodeId]) {
        self.completions.inc();
        self.activations.add(fired.len() as u64);
        let span = trace::span_with(
            "sched",
            "sched.on_completed",
            vec![("node", (v.0 as u64).into()), ("fired", fired.len().into())],
        );
        self.inner.on_completed(v, fired);
        drop(span);
        self.sample_gauges();
    }

    fn pop_ready(&mut self) -> Option<NodeId> {
        self.pops.inc();
        let span = trace::span("sched", "sched.pop_ready");
        let popped = self.inner.pop_ready();
        match popped {
            Some(t) => span.end_args(vec![("popped", (t.0 as u64).into())]),
            None => drop(span),
        }
        self.sample_gauges();
        popped
    }

    fn pop_batch(&mut self, out: &mut Vec<NodeId>, max: usize) -> usize {
        self.batch_pops.inc();
        let span = trace::span("sched", "sched.pop_batch");
        let got = self.inner.pop_batch(out, max);
        span.end_args(vec![("popped", got.into()), ("max", max.into())]);
        self.batch_popped_tasks.add(got as u64);
        if trace::enabled() {
            incr_obs::registry()
                .histogram("sched.pop_batch_size")
                .record(got as u64);
        }
        self.sample_gauges();
        got
    }

    fn complete_batch(&mut self, batch: &CompletionBatch) {
        self.completions.add(batch.len() as u64);
        self.activations.add(batch.total_fired() as u64);
        let span = trace::span_with(
            "sched",
            "sched.complete_batch",
            vec![
                ("completions", batch.len().into()),
                ("fired", batch.total_fired().into()),
            ],
        );
        self.inner.complete_batch(batch);
        drop(span);
        if trace::enabled() {
            incr_obs::registry()
                .histogram("sched.complete_batch_size")
                .record(batch.len() as u64);
        }
        self.sample_gauges();
    }

    fn is_quiescent(&self) -> bool {
        self.inner.is_quiescent()
    }

    fn cost(&self) -> CostMeter {
        self.inner.cost()
    }

    fn space_bytes(&self) -> usize {
        self.inner.space_bytes()
    }

    fn precompute_bytes(&self) -> usize {
        self.inner.precompute_bytes()
    }

    fn on_external_dispatch(&mut self, v: NodeId) {
        self.inner.on_external_dispatch(v);
    }

    fn gauges(&self) -> Vec<(&'static str, i64)> {
        self.inner.gauges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LevelBased, SchedulerKind};
    use incr_dag::{DagBuilder, NodeId};
    use std::sync::Arc;

    fn diamond() -> Arc<incr_dag::Dag> {
        let mut b = DagBuilder::new(4);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        Arc::new(b.build().unwrap())
    }

    fn drive(s: &mut dyn Scheduler) -> usize {
        s.start(&[NodeId(0)]);
        let fired: Vec<Vec<NodeId>> = vec![
            vec![NodeId(1), NodeId(2)],
            vec![NodeId(3)],
            vec![NodeId(3)],
            vec![],
        ];
        let mut done = 0;
        while !s.is_quiescent() {
            let t = s.pop_ready().expect("stall");
            s.on_completed(t, &fired[t.index()]);
            done += 1;
        }
        done
    }

    #[test]
    fn wrapping_does_not_change_decisions() {
        let dag = diamond();
        let mut plain = LevelBased::new(dag.clone());
        let mut wrapped = Observed::new(Box::new(LevelBased::new(dag)));
        assert_eq!(drive(&mut plain), drive(&mut wrapped));
        assert_eq!(plain.cost(), wrapped.cost());
        assert_eq!(wrapped.name(), "LevelBased");
    }

    #[test]
    fn counters_accumulate_even_without_tracing() {
        let before = incr_obs::registry().counter("sched.completions").get();
        let mut s = Observed::new(SchedulerKind::Hybrid.build(diamond()));
        let done = drive(&mut s);
        assert_eq!(done, 4);
        let after = incr_obs::registry().counter("sched.completions").get();
        assert_eq!(after - before, 4);
    }

    #[test]
    fn every_kind_exposes_gauges_or_none() {
        for kind in [
            SchedulerKind::LevelBased,
            SchedulerKind::Lookahead(3),
            SchedulerKind::LogicBlox,
            SchedulerKind::SignalPropagation,
            SchedulerKind::Hybrid,
            SchedulerKind::ExactGreedy,
        ] {
            let mut s = kind.build(diamond());
            s.start(&[NodeId(0)]);
            for (name, v) in s.gauges() {
                assert!(!name.is_empty());
                assert!(v >= 0, "{kind:?} gauge {name} negative at start");
            }
        }
    }
}
