//! Reimplementation of the production LogicBlox scheduler (paper §II-C,
//! §VI-B).
//!
//! Preprocessing: the interval-list transitive closure of the whole DAG
//! (`O(V²)` space in the worst case). At runtime the scheduler keeps a
//! queue of active tasks; whenever its ready queue runs dry it *scans* the
//! active queue, and for each candidate checks the interval lists to
//! decide whether any active-uncompleted task is an ancestor. That scan is
//! the `O(n³)` worst case the paper identifies: `O(n)` scans × `O(n)`
//! candidates × `O(n)` ancestor checks.
//!
//! # Scan modes
//!
//! * [`ScanMode::Faithful`] executes the naive candidate × blocker loop
//!   literally. Decisions and charged costs are exact; wall time can be
//!   quadratic in the active count, which is unusable on the ~130k-active
//!   production-scale traces (#6, #11).
//! * [`ScanMode::CostModeled`] makes the *same decisions* via a
//!   level-pruned check (only blockers at strictly lower levels can be
//!   ancestors) but charges the meter what the naive loop would have paid.
//!   For a candidate found ready the naive loop inspects every blocker —
//!   charged exactly. For a blocked candidate the naive loop early-exits
//!   at the first blocking ancestor; the charge is the pruned-scan
//!   position scaled by the fraction of blockers the pruned scan skips
//!   (an estimate, capped at the blocker count). Equivalence of decisions
//!   and closeness of charges are property-tested.

use crate::cost::CostMeter;
use crate::scheduler::{NodeState, Scheduler, StateTable};
use incr_dag::{Dag, IntervalList, NodeId};
use std::collections::VecDeque;
use std::sync::Arc;

/// How the active-queue scan computes readiness. See module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanMode {
    /// Naive candidate × blocker loop, literal costs.
    Faithful,
    /// Level-pruned loop with identical decisions and modeled naive costs.
    CostModeled,
}

/// The production-baseline scheduler.
pub struct LogicBlox {
    dag: Arc<Dag>,
    il: IntervalList,
    state: StateTable,
    mode: ScanMode,
    /// Active tasks not yet moved to the ready queue, in activation order;
    /// entries go stale when tasks are dispatched externally.
    active_queue: VecDeque<NodeId>,
    ready: VecDeque<NodeId>,
    /// In `ready` already (avoid rescanning / double-queueing); stamped
    /// against `state.generation()` so restarts need no O(V) clear.
    queued_stamp: Vec<u32>,
    /// Active-or-running (uncompleted) tasks, bucketed by level for the
    /// pruned check; total count mirrors the naive blocker list length.
    blockers_by_level: Vec<Vec<NodeId>>,
    /// Position of each node inside its level bucket (for O(1) removal).
    blocker_pos: Vec<u32>,
    blocker_count: usize,
    /// Levels whose blocker bucket was written this run (the only ones the
    /// next `start` clears — O(active) restarts instead of O(L)).
    touched_levels: Vec<u32>,
    /// `blocker_level_stamp[l] == state.generation()` ⇔ `l` in `touched_levels`.
    blocker_level_stamp: Vec<u32>,
    /// Something changed since the last scan; a new scan may find work.
    dirty: bool,
    cost: CostMeter,
    peak_tracked: usize,
    /// Cached `il.total_intervals()` — the structure is immutable after
    /// build, and the gauge is sampled on hot paths.
    interval_count: usize,
}

impl LogicBlox {
    pub fn new(dag: Arc<Dag>) -> Self {
        Self::with_mode(dag, ScanMode::CostModeled)
    }

    pub fn with_mode(dag: Arc<Dag>, mode: ScanMode) -> Self {
        let il = IntervalList::build(&dag);
        let interval_count = il.total_intervals();
        let n = dag.node_count();
        let l = dag.num_levels() as usize;
        LogicBlox {
            dag,
            il,
            interval_count,
            state: StateTable::new(n),
            mode,
            active_queue: VecDeque::new(),
            ready: VecDeque::new(),
            queued_stamp: vec![0; n],
            blockers_by_level: vec![Vec::new(); l],
            blocker_pos: vec![0; n],
            blocker_count: 0,
            touched_levels: Vec::new(),
            blocker_level_stamp: vec![0; l],
            dirty: false,
            cost: CostMeter::default(),
            peak_tracked: 0,
        }
    }

    /// The scan mode in force.
    pub fn mode(&self) -> ScanMode {
        self.mode
    }

    #[inline]
    fn is_queued(&self, v: NodeId) -> bool {
        self.queued_stamp[v.index()] == self.state.generation()
    }

    #[inline]
    fn mark_queued(&mut self, v: NodeId) {
        self.queued_stamp[v.index()] = self.state.generation();
    }

    fn add_blocker(&mut self, v: NodeId) {
        let l = self.dag.level(v) as usize;
        let gen = self.state.generation();
        if self.blocker_level_stamp[l] != gen {
            self.blocker_level_stamp[l] = gen;
            self.touched_levels.push(l as u32);
        }
        self.blocker_pos[v.index()] = self.blockers_by_level[l].len() as u32;
        self.blockers_by_level[l].push(v);
        self.blocker_count += 1;
    }

    fn remove_blocker(&mut self, v: NodeId) {
        let l = self.dag.level(v) as usize;
        let pos = self.blocker_pos[v.index()] as usize;
        let bucket = &mut self.blockers_by_level[l];
        bucket.swap_remove(pos);
        if pos < bucket.len() {
            let moved = bucket[pos];
            self.blocker_pos[moved.index()] = pos as u32;
        }
        self.blocker_count -= 1;
    }

    fn activate(&mut self, v: NodeId) {
        if self.state.activate(v) {
            self.cost.activations += 1;
            self.active_queue.push_back(v);
            self.add_blocker(v);
            self.dirty = true;
            self.peak_tracked = self.peak_tracked.max(self.state.active_unexecuted());
        }
    }

    /// Is candidate `t` safe, and what does the check cost?
    ///
    /// Returns `(safe, charged_queries, charged_probes)`.
    fn check_candidate(&self, t: NodeId) -> (bool, u64, u64) {
        match self.mode {
            ScanMode::Faithful => {
                let mut queries = 0u64;
                let mut probes = 0u64;
                for bucket in &self.blockers_by_level {
                    for &a in bucket {
                        if a == t {
                            continue;
                        }
                        queries += 1;
                        let (anc, p) = self.il.is_descendant_counted(a, t);
                        probes += p;
                        if anc {
                            return (false, queries, probes);
                        }
                    }
                }
                (true, queries, probes)
            }
            ScanMode::CostModeled => {
                let lt = self.dag.level(t) as usize;
                let total = self.blocker_count as u64;
                let lower: u64 = self.blockers_by_level[..lt]
                    .iter()
                    .map(|b| b.len() as u64)
                    .sum();
                let mut inspected = 0u64;
                for bucket in &self.blockers_by_level[..lt] {
                    for &a in bucket {
                        inspected += 1;
                        let (anc, _) = self.il.is_descendant_counted(a, t);
                        if anc {
                            // Naive early-exit position estimate: scale the
                            // pruned position by the skip ratio, cap at the
                            // full blocker count.
                            let scale = if lower == 0 { 1 } else { total.div_ceil(lower) };
                            let charged = (inspected * scale).min(total.max(1));
                            return (false, charged, 2 * charged);
                        }
                    }
                }
                // Ready: the naive loop would have inspected every blocker
                // (minus self if it is one).
                let charged = total.saturating_sub(1).max(lower);
                (true, charged, 2 * charged)
            }
        }
    }

    /// Scan the whole active queue, moving every safe task to the ready
    /// queue (paper §II-C: "the scheduler scans the queue of active tasks
    /// ... if [ready], it is added to the queue of ready work").
    fn scan(&mut self) {
        let len = self.active_queue.len();
        for _ in 0..len {
            let Some(t) = self.active_queue.pop_front() else {
                break;
            };
            // Drop stale entries (already dispatched/queued elsewhere).
            if self.state.get(t) != NodeState::Active || self.is_queued(t) {
                continue;
            }
            self.cost.scan_steps += 1;
            let (safe, queries, probes) = self.check_candidate(t);
            self.cost.ancestor_queries += queries;
            self.cost.interval_probes += probes;
            if safe {
                self.mark_queued(t);
                self.ready.push_back(t);
            } else {
                self.active_queue.push_back(t);
            }
        }
        self.dirty = false;
    }

    /// Pop from the ready queue without triggering a scan — the hybrid
    /// driver uses this to interleave with the LevelBased supply.
    pub(crate) fn pop_ready_no_scan(&mut self) -> Option<NodeId> {
        while let Some(t) = self.ready.pop_front() {
            if self.state.get(t) == NodeState::Active {
                self.state.dispatch(t);
                return Some(t);
            }
        }
        None
    }

    /// Examine up to `budget` candidates from the front of the active
    /// queue — the hybrid's bounded background scan. Safe candidates move
    /// to the ready queue. `dirty` is cleared only when a full pass
    /// completes within the budget.
    pub(crate) fn background_scan_slice(&mut self, budget: usize) {
        if !self.dirty {
            return;
        }
        let mut examined = 0usize;
        let len = self.active_queue.len();
        for _ in 0..len {
            if examined >= budget {
                return; // budget exhausted; dirty stays set
            }
            let Some(t) = self.active_queue.pop_front() else {
                break;
            };
            if self.state.get(t) != NodeState::Active || self.is_queued(t) {
                continue;
            }
            examined += 1;
            self.cost.scan_steps += 1;
            let (safe, queries, probes) = self.check_candidate(t);
            self.cost.ancestor_queries += queries;
            self.cost.interval_probes += probes;
            if safe {
                self.mark_queued(t);
                self.ready.push_back(t);
            } else {
                self.active_queue.push_back(t);
            }
        }
        self.dirty = false;
    }

    /// Number of uncompleted active tasks currently blocking.
    pub fn blocker_count(&self) -> usize {
        self.blocker_count
    }

    /// Total intervals held by the preprocessing structure.
    pub fn interval_count(&self) -> usize {
        self.interval_count
    }
}

impl Scheduler for LogicBlox {
    fn name(&self) -> &str {
        "LogicBlox"
    }

    fn start(&mut self, initial_active: &[NodeId]) {
        // O(active of the previous run): queue leftovers and touched
        // blocker levels only; `queued_stamp` resets for free via the
        // generation bump in `state.reset()`.
        self.active_queue.clear();
        self.ready.clear();
        for &l in &self.touched_levels {
            self.blockers_by_level[l as usize].clear();
        }
        self.touched_levels.clear();
        self.state.reset();
        if self.state.generation() == 1 {
            // Stamp generation wrapped: old stamps could alias the new one.
            self.queued_stamp.fill(0);
            self.blocker_level_stamp.fill(0);
        }
        self.blocker_count = 0;
        self.dirty = false;
        self.cost = CostMeter::default();
        self.peak_tracked = 0;
        for &v in initial_active {
            self.activate(v);
        }
    }

    fn on_completed(&mut self, v: NodeId, fired: &[NodeId]) {
        self.cost.completions += 1;
        self.state.complete(v);
        self.remove_blocker(v);
        for &c in fired {
            self.activate(c);
        }
        // A completion can unblock candidates even without new activations.
        self.dirty = true;
    }

    fn pop_ready(&mut self) -> Option<NodeId> {
        self.cost.pops += 1;
        if let Some(t) = self.pop_ready_no_scan() {
            return Some(t);
        }
        if self.dirty {
            self.scan();
        }
        self.pop_ready_no_scan()
    }

    fn pop_batch(&mut self, out: &mut Vec<NodeId>, max: usize) -> usize {
        // Drain the ready queue, scan at most once if it runs dry, then
        // drain again — one `pops` charge and one trait crossing per
        // wavefront; the scan charges stay per-candidate as always.
        self.cost.pops += 1;
        let before = out.len();
        while out.len() - before < max {
            match self.pop_ready_no_scan() {
                Some(t) => out.push(t),
                None => {
                    if !self.dirty {
                        break;
                    }
                    self.scan();
                    match self.pop_ready_no_scan() {
                        Some(t) => out.push(t),
                        None => break,
                    }
                }
            }
        }
        out.len() - before
    }

    fn is_quiescent(&self) -> bool {
        self.state.active_unexecuted() == 0
    }

    fn cost(&self) -> CostMeter {
        self.cost
    }

    fn space_bytes(&self) -> usize {
        (self.active_queue.len() + self.ready.len() + self.blocker_count)
            * std::mem::size_of::<NodeId>()
            + self.queued_stamp.len() * std::mem::size_of::<u32>()
            + self.blocker_pos.len() * std::mem::size_of::<u32>()
            + self.state.bytes()
    }

    fn precompute_bytes(&self) -> usize {
        self.il.memory_bytes()
    }

    fn on_external_dispatch(&mut self, v: NodeId) {
        if self.state.get(v) == NodeState::Active {
            // Queue entries go stale and are dropped on the next scan;
            // the blocker entry stays until completion.
            self.state.dispatch(v);
        }
    }

    fn gauges(&self) -> Vec<(&'static str, i64)> {
        vec![
            ("lbx.active_queue_depth", self.active_queue.len() as i64),
            ("lbx.ready_depth", self.ready.len() as i64),
            ("lbx.blockers", self.blocker_count as i64),
            ("lbx.interval_list_size", self.interval_count as i64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incr_dag::DagBuilder;

    fn diamond() -> Arc<Dag> {
        let mut b = DagBuilder::new(4);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        Arc::new(b.build().unwrap())
    }

    fn run_serial(s: &mut dyn Scheduler, initial: &[NodeId], fired: &[Vec<NodeId>]) -> Vec<NodeId> {
        s.start(initial);
        let mut order = Vec::new();
        while !s.is_quiescent() {
            let t = s.pop_ready().expect("stall");
            order.push(t);
            s.on_completed(t, &fired[t.index()]);
        }
        order
    }

    #[test]
    fn respects_active_ancestors() {
        for mode in [ScanMode::Faithful, ScanMode::CostModeled] {
            let mut s = LogicBlox::with_mode(diamond(), mode);
            s.start(&[NodeId(1), NodeId(3)]);
            assert_eq!(s.pop_ready(), Some(NodeId(1)), "{mode:?}");
            assert!(s.pop_ready().is_none(), "{mode:?}: 3 blocked by 1");
            s.on_completed(NodeId(1), &[]);
            assert_eq!(s.pop_ready(), Some(NodeId(3)), "{mode:?}");
            s.on_completed(NodeId(3), &[]);
            assert!(s.is_quiescent());
        }
    }

    #[test]
    fn modes_make_identical_decisions() {
        let fired: Vec<Vec<NodeId>> = vec![
            vec![NodeId(1), NodeId(2)],
            vec![NodeId(3)],
            vec![NodeId(3)],
            vec![],
        ];
        let mut a = LogicBlox::with_mode(diamond(), ScanMode::Faithful);
        let mut b = LogicBlox::with_mode(diamond(), ScanMode::CostModeled);
        let oa = run_serial(&mut a, &[NodeId(0)], &fired);
        let ob = run_serial(&mut b, &[NodeId(0)], &fired);
        assert_eq!(oa, ob);
    }

    #[test]
    fn faithful_charges_grow_with_blockers() {
        // Wide fan: 1 source firing many independent sinks. Verifying each
        // sink ready requires consulting every other blocker.
        let width = 20u32;
        let mut bld = DagBuilder::new(1 + width as usize);
        for i in 0..width {
            bld.add_edge(NodeId(0), NodeId(1 + i));
        }
        let dag = Arc::new(bld.build().unwrap());
        let mut s = LogicBlox::with_mode(dag, ScanMode::Faithful);
        s.start(&[NodeId(0)]);
        let t = s.pop_ready().unwrap();
        let fired: Vec<NodeId> = (1..=width).map(NodeId).collect();
        s.on_completed(t, &fired);
        while let Some(t) = s.pop_ready() {
            s.on_completed(t, &[]);
        }
        assert!(s.is_quiescent());
        let q = s.cost().ancestor_queries;
        // First scan alone: ~width * (width - 1) pairwise checks.
        assert!(
            q >= (width as u64 - 1) * (width as u64 - 1),
            "queries {q} too low for quadratic scan"
        );
    }

    #[test]
    fn no_rescan_when_not_dirty() {
        let mut s = LogicBlox::new(diamond());
        s.start(&[NodeId(1), NodeId(3)]);
        let _ = s.pop_ready().unwrap(); // scan happens; 1 dispatched
        let scans_after_first = s.cost().scan_steps;
        assert!(s.pop_ready().is_none());
        assert!(s.pop_ready().is_none());
        assert_eq!(
            s.cost().scan_steps,
            scans_after_first,
            "idle pops must not rescan"
        );
    }

    #[test]
    fn external_dispatch_goes_stale() {
        let mut s = LogicBlox::new(diamond());
        s.start(&[NodeId(1), NodeId(2)]);
        s.on_external_dispatch(NodeId(1));
        let t = s.pop_ready().unwrap();
        assert_eq!(t, NodeId(2), "externally dispatched task never re-offered");
        s.on_completed(NodeId(2), &[]);
        s.on_completed(NodeId(1), &[]);
        assert!(s.is_quiescent());
    }

    #[test]
    fn interval_preprocessing_reported() {
        let s = LogicBlox::new(diamond());
        assert!(s.interval_count() >= 4);
        assert!(s.precompute_bytes() > 0);
    }
}
