//! Activation-set coalescing for streamed updates.
//!
//! When k queued updates are admitted as one scheduler run, their
//! initially-active sets must be merged into a single `start()` argument.
//! Active closures distribute over union — `closure(A ∪ B) = closure(A) ∪
//! closure(B)`, since a node is active iff it is reachable from the
//! initial set along fired edges — so the union start executes exactly
//! the union of what the serial runs would execute, each node at most
//! once per coalesced run.
//!
//! [`ActivationCoalescer`] computes that union allocation-free after
//! setup: one generation-stamped array sized to the DAG, reused across
//! every merge in the stream (the same trick as the scheduler
//! `StateTable`, so coalescing k updates costs O(Σ|setᵢ|), not O(V)).

use incr_dag::NodeId;

/// Generation-stamped set-union helper for initially-active node sets.
#[derive(Clone, Debug, Default)]
pub struct ActivationCoalescer {
    stamp: Vec<u32>,
    generation: u32,
}

impl ActivationCoalescer {
    /// A coalescer for DAGs of up to `n` nodes.
    pub fn new(n: usize) -> Self {
        ActivationCoalescer {
            stamp: vec![0; n],
            generation: 0,
        }
    }

    /// Begin a fresh merge: forget everything added so far. O(1) — the
    /// generation bump invalidates all stamps at once.
    pub fn begin(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Wrapped: stamps from 2^32 merges ago could collide. Hard
            // reset (once every 4 billion merges).
            self.stamp.fill(0);
            self.generation = 1;
        }
    }

    /// Append the members of `initial` not yet seen this merge to `out`,
    /// preserving first-occurrence order.
    pub fn add(&mut self, initial: &[NodeId], out: &mut Vec<NodeId>) {
        for &v in initial {
            let s = &mut self.stamp[v.index()];
            if *s != self.generation {
                *s = self.generation;
                out.push(v);
            }
        }
    }

    /// Convenience: union of several sets in one call.
    pub fn union_into(&mut self, sets: &[&[NodeId]], out: &mut Vec<NodeId>) {
        self.begin();
        out.clear();
        for set in sets {
            self.add(set, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u32]) -> Vec<NodeId> {
        xs.iter().map(|&x| NodeId(x)).collect()
    }

    #[test]
    fn union_dedupes_across_sets() {
        let mut c = ActivationCoalescer::new(8);
        let mut out = Vec::new();
        let (a, b, d) = (ids(&[0, 3, 5]), ids(&[3, 1]), ids(&[5, 0, 7]));
        c.union_into(&[&a, &b, &d], &mut out);
        assert_eq!(out, ids(&[0, 3, 5, 1, 7]));
    }

    #[test]
    fn dedupes_within_one_set() {
        let mut c = ActivationCoalescer::new(4);
        let mut out = Vec::new();
        c.union_into(&[&ids(&[2, 2, 2])], &mut out);
        assert_eq!(out, ids(&[2]));
    }

    #[test]
    fn begin_resets_between_merges() {
        let mut c = ActivationCoalescer::new(4);
        let mut out = Vec::new();
        c.union_into(&[&ids(&[1, 2])], &mut out);
        c.union_into(&[&ids(&[2, 3])], &mut out);
        assert_eq!(out, ids(&[2, 3]));
    }

    #[test]
    fn incremental_add_preserves_order() {
        let mut c = ActivationCoalescer::new(8);
        let mut out = Vec::new();
        c.begin();
        c.add(&ids(&[4, 1]), &mut out);
        c.add(&ids(&[1, 6]), &mut out);
        assert_eq!(out, ids(&[4, 1, 6]));
    }

    #[test]
    fn generation_wrap_hard_resets() {
        let mut c = ActivationCoalescer::new(2);
        c.generation = u32::MAX;
        let mut out = Vec::new();
        c.union_into(&[&ids(&[0])], &mut out);
        assert_eq!(out, ids(&[0]));
        assert_eq!(c.generation, 1);
    }
}
