//! The Hybrid scheduler — the paper's main result (§V, evaluated in §VI).
//!
//! Runs the LevelBased scheduler *alongside* the production LogicBlox
//! scheduler with a shared notion of dispatched work: "both schedulers
//! independently identify ready-to-run tasks and add them to the shared
//! queue" (§VI-B). On instances where LogicBlox shines, its deep-ready
//! discovery keeps processors saturated across level barriers; on its
//! pathological instances (shallow-wide DAGs like traces #6 and #11,
//! where scanning the huge active queue dominates) the LevelBased side
//! hands out ready work in O(1), so the expensive scans rarely or never
//! run.
//!
//! Every pop first consults LevelBased (cheap). Only when LevelBased is
//! stalled at a level barrier does the LogicBlox side scan. With
//! [`HybridConfig::background_scan`] the LogicBlox side additionally
//! advances its scan a bounded number of candidates per pop even when
//! LevelBased supplied the task — modelling the production deployment
//! where both schedulers genuinely run in parallel and both burn cycles.
//! The `ablation_hybrid` bench sweeps this knob.

use crate::cost::CostMeter;
use crate::levelbased::LevelBased;
use crate::logicblox::LogicBlox;
use crate::scheduler::Scheduler;
use incr_dag::{Dag, NodeId};
use std::sync::Arc;

/// Tuning for the hybrid interleave.
#[derive(Clone, Copy, Debug)]
pub struct HybridConfig {
    /// If true, the LogicBlox side keeps scanning (bounded per pop) even
    /// while LevelBased supplies work — the paper's "run in parallel"
    /// deployment. If false, LogicBlox scans only when LevelBased stalls.
    pub background_scan: bool,
    /// Max candidates the background scan examines per pop.
    pub scan_slice: usize,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            background_scan: false,
            scan_slice: 64,
        }
    }
}

/// LevelBased + LogicBlox with a shared ready supply.
pub struct Hybrid {
    lb: LevelBased,
    lbx: LogicBlox,
    config: HybridConfig,
    pops: u64,
}

impl Hybrid {
    pub fn new(dag: Arc<Dag>) -> Self {
        Self::with_config(dag, HybridConfig::default())
    }

    pub fn with_config(dag: Arc<Dag>, config: HybridConfig) -> Self {
        Hybrid {
            lb: LevelBased::new(dag.clone()),
            lbx: LogicBlox::new(dag),
            config,
            pops: 0,
        }
    }

    /// Cost charged by the LevelBased side alone.
    pub fn levelbased_cost(&self) -> CostMeter {
        self.lb.cost()
    }

    /// Cost charged by the LogicBlox side alone.
    pub fn logicblox_cost(&self) -> CostMeter {
        self.lbx.cost()
    }
}

impl Scheduler for Hybrid {
    fn name(&self) -> &str {
        "Hybrid"
    }

    fn start(&mut self, initial_active: &[NodeId]) {
        self.lb.start(initial_active);
        self.lbx.start(initial_active);
        self.pops = 0;
    }

    fn on_completed(&mut self, v: NodeId, fired: &[NodeId]) {
        self.lb.on_completed(v, fired);
        self.lbx.on_completed(v, fired);
    }

    fn pop_ready(&mut self) -> Option<NodeId> {
        self.pops += 1;
        // LevelBased first: O(1) supply whenever the current level has work.
        if let Some(t) = self.lb.pop_ready() {
            self.lbx.on_external_dispatch(t);
            if self.config.background_scan {
                // Model the parallel production deployment: the LogicBlox
                // side burns a bounded slice of scan work concurrently.
                self.lbx.background_scan_slice(self.config.scan_slice);
            }
            return Some(t);
        }
        // LevelBased stalled at a barrier (or drained): let LogicBlox find
        // cross-level ready work the barrier is hiding.
        if let Some(t) = self.lbx.pop_ready() {
            self.lb.on_external_dispatch(t);
            return Some(t);
        }
        None
    }

    fn pop_batch(&mut self, out: &mut Vec<NodeId>, max: usize) -> usize {
        self.pops += 1;
        let before = out.len();
        // LevelBased drains its whole frontier in one inner batch; each
        // dispatched task is mirrored into the LogicBlox side.
        self.lb.pop_batch(out, max);
        for &t in &out[before..] {
            self.lbx.on_external_dispatch(t);
        }
        if self.config.background_scan && out.len() > before {
            // One slice per batch, not per node: the batch models a single
            // concurrent pop round of the parallel deployment.
            self.lbx.background_scan_slice(self.config.scan_slice);
        }
        // Remaining capacity: cross-level work hidden behind the barrier.
        if out.len() - before < max {
            let lb_end = out.len();
            self.lbx.pop_batch(out, max - (lb_end - before));
            for &t in &out[lb_end..] {
                self.lb.on_external_dispatch(t);
            }
        }
        out.len() - before
    }

    fn is_quiescent(&self) -> bool {
        // Both track the same truth; ask either.
        self.lb.is_quiescent()
    }

    fn cost(&self) -> CostMeter {
        self.lb.cost().plus(&self.lbx.cost())
    }

    fn space_bytes(&self) -> usize {
        self.lb.space_bytes() + self.lbx.space_bytes()
    }

    fn precompute_bytes(&self) -> usize {
        self.lb.precompute_bytes() + self.lbx.precompute_bytes()
    }

    fn on_external_dispatch(&mut self, v: NodeId) {
        self.lb.on_external_dispatch(v);
        self.lbx.on_external_dispatch(v);
    }

    fn gauges(&self) -> Vec<(&'static str, i64)> {
        let mut g = self.lb.gauges();
        g.extend(self.lbx.gauges());
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SafetyChecker;
    use incr_dag::DagBuilder;

    /// Two chains: 0 -> 2 -> 4 and 1 -> 3 -> 5.
    fn ladder() -> Arc<Dag> {
        let mut b = DagBuilder::new(6);
        for (u, v) in [(0, 2), (2, 4), (1, 3), (3, 5)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn rescues_levelbased_barrier() {
        let mut s = Hybrid::new(ladder());
        s.start(&[NodeId(0), NodeId(1)]);
        let a = s.pop_ready().unwrap();
        let b = s.pop_ready().unwrap();
        // Finish chain A's source, firing its level-1 task; keep chain B's
        // source running. LevelBased alone would stall at the barrier.
        s.on_completed(a, &[NodeId(a.0 + 2)]);
        let t = s
            .pop_ready()
            .expect("hybrid must find the cross-level ready task");
        assert_eq!(t, NodeId(a.0 + 2), "the fired child is safe to run");
        s.on_completed(t, &[]);
        s.on_completed(b, &[]);
        assert!(s.is_quiescent());
    }

    #[test]
    fn no_task_issued_twice() {
        let dag = ladder();
        let mut s = Hybrid::new(dag.clone());
        let mut check = SafetyChecker::new(dag);
        let initial = [NodeId(0), NodeId(1)];
        s.start(&initial);
        check.on_start(&initial);
        let mut in_flight: Vec<NodeId> = Vec::new();
        let mut executed = 0;
        loop {
            while let Some(t) = s.pop_ready() {
                check.on_pop(t);
                in_flight.push(t);
            }
            let Some(t) = in_flight.pop() else { break };
            let fired: Vec<NodeId> = if t.0 + 2 < 6 { vec![NodeId(t.0 + 2)] } else { vec![] };
            s.on_completed(t, &fired);
            check.on_complete(t, &fired);
            executed += 1;
        }
        check.on_finish();
        assert_eq!(executed, 6);
        assert!(s.is_quiescent());
    }

    #[test]
    fn background_scan_charges_logicblox_side() {
        let mut quiet = Hybrid::with_config(
            ladder(),
            HybridConfig {
                background_scan: false,
                scan_slice: 16,
            },
        );
        let mut busy = Hybrid::with_config(
            ladder(),
            HybridConfig {
                background_scan: true,
                scan_slice: 16,
            },
        );
        for s in [&mut quiet, &mut busy] {
            s.start(&[NodeId(0), NodeId(1)]);
            let mut in_flight = Vec::new();
            loop {
                while let Some(t) = s.pop_ready() {
                    in_flight.push(t);
                }
                let Some(t) = in_flight.pop() else { break };
                let fired: Vec<NodeId> =
                    if t.0 + 2 < 6 { vec![NodeId(t.0 + 2)] } else { vec![] };
                s.on_completed(t, &fired);
            }
        }
        assert!(
            busy.logicblox_cost().scan_steps >= quiet.logicblox_cost().scan_steps,
            "background scanning must not reduce LogicBlox-side work"
        );
    }

    #[test]
    fn per_side_costs_sum_to_total() {
        let mut s = Hybrid::new(ladder());
        s.start(&[NodeId(0)]);
        let t = s.pop_ready().unwrap();
        s.on_completed(t, &[]);
        let total = s.cost();
        let sum = s.levelbased_cost().plus(&s.logicblox_cost());
        assert_eq!(total, sum);
    }
}
