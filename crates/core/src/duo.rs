//! Generic two-scheduler combinator — the full generality of §V.
//!
//! The paper's Theorem 10 and the practical hybrid of §VI are stated for
//! *any* heuristic `A` run alongside LevelBased: "the LevelBased
//! algorithm identifies tasks that are ready to be scheduled ... The
//! method is oblivious to how those tasks were completed and, therefore,
//! LevelBased can be run alongside any scheduling algorithm" (§III).
//! [`Duo`] realizes that: it combines any two [`Scheduler`]s with a
//! shared notion of dispatched work, consulting the `primary` first on
//! every pop and falling back to the `secondary` when the primary has
//! nothing safe to offer. Completions are delivered to both sides;
//! cross-dispatches are reconciled through
//! [`Scheduler::on_external_dispatch`].
//!
//! [`crate::Hybrid`] is the production-tuned LevelBased + LogicBlox
//! instance of this idea (with the background-scan knob the paper's
//! deployment implies); `Duo` is the general construction used by the
//! §V experiments and available to users with their own heuristics.

use crate::cost::CostMeter;
use crate::scheduler::Scheduler;
use incr_dag::NodeId;

/// Any-two-schedulers combination with a shared dispatch view.
pub struct Duo<A: Scheduler, B: Scheduler> {
    primary: A,
    secondary: B,
    name: String,
}

impl<A: Scheduler, B: Scheduler> Duo<A, B> {
    pub fn new(primary: A, secondary: B) -> Self {
        let name = format!("Duo({}+{})", primary.name(), secondary.name());
        Duo {
            primary,
            secondary,
            name,
        }
    }

    /// The primary sub-scheduler (consulted first on every pop).
    pub fn primary(&self) -> &A {
        &self.primary
    }

    /// The secondary sub-scheduler (the fallback).
    pub fn secondary(&self) -> &B {
        &self.secondary
    }
}

impl<A: Scheduler, B: Scheduler> Scheduler for Duo<A, B> {
    fn name(&self) -> &str {
        &self.name
    }

    fn start(&mut self, initial_active: &[NodeId]) {
        self.primary.start(initial_active);
        self.secondary.start(initial_active);
    }

    fn on_completed(&mut self, v: NodeId, fired: &[NodeId]) {
        self.primary.on_completed(v, fired);
        self.secondary.on_completed(v, fired);
    }

    fn pop_ready(&mut self) -> Option<NodeId> {
        if let Some(t) = self.primary.pop_ready() {
            self.secondary.on_external_dispatch(t);
            return Some(t);
        }
        if let Some(t) = self.secondary.pop_ready() {
            self.primary.on_external_dispatch(t);
            return Some(t);
        }
        None
    }

    fn pop_batch(&mut self, out: &mut Vec<NodeId>, max: usize) -> usize {
        let before = out.len();
        self.primary.pop_batch(out, max);
        for &t in &out[before..] {
            self.secondary.on_external_dispatch(t);
        }
        if out.len() - before < max {
            let primary_end = out.len();
            self.secondary.pop_batch(out, max - (primary_end - before));
            for &t in &out[primary_end..] {
                self.primary.on_external_dispatch(t);
            }
        }
        out.len() - before
    }

    fn is_quiescent(&self) -> bool {
        self.primary.is_quiescent()
    }

    fn cost(&self) -> CostMeter {
        self.primary.cost().plus(&self.secondary.cost())
    }

    fn space_bytes(&self) -> usize {
        self.primary.space_bytes() + self.secondary.space_bytes()
    }

    fn precompute_bytes(&self) -> usize {
        self.primary.precompute_bytes() + self.secondary.precompute_bytes()
    }

    fn on_external_dispatch(&mut self, v: NodeId) {
        self.primary.on_external_dispatch(v);
        self.secondary.on_external_dispatch(v);
    }

    fn gauges(&self) -> Vec<(&'static str, i64)> {
        let mut g = self.primary.gauges();
        g.extend(self.secondary.gauges());
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        ExactGreedy, LevelBased, LevelBasedLookahead, LogicBlox, SignalPropagation,
    };
    use incr_dag::{Dag, DagBuilder, NodeId};
    use std::sync::Arc;

    /// Two chains 0->2->4, 1->3->5 (levels 0,1,2).
    fn ladder() -> Arc<Dag> {
        let mut b = DagBuilder::new(6);
        for (u, v) in [(0, 2), (2, 4), (1, 3), (3, 5)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        Arc::new(b.build().unwrap())
    }

    /// Drive serially with full firing; count executions.
    fn drive(s: &mut dyn Scheduler, dag: &Arc<Dag>, initial: &[NodeId]) -> usize {
        s.start(initial);
        let mut n = 0;
        let mut in_flight = Vec::new();
        loop {
            while let Some(t) = s.pop_ready() {
                in_flight.push(t);
            }
            let Some(t) = in_flight.pop() else { break };
            n += 1;
            let fired: Vec<NodeId> = dag.children(t).to_vec();
            s.on_completed(t, &fired);
        }
        assert!(s.is_quiescent());
        n
    }

    #[test]
    fn arbitrary_pairings_execute_everything() {
        let dag = ladder();
        let initial = [NodeId(0), NodeId(1)];
        // LBL + LogicBlox
        let mut a = Duo::new(
            LevelBasedLookahead::new(dag.clone(), 4),
            LogicBlox::new(dag.clone()),
        );
        assert_eq!(drive(&mut a, &dag, &initial), 6);
        // LevelBased + SignalPropagation
        let mut b = Duo::new(
            LevelBased::new(dag.clone()),
            SignalPropagation::new(dag.clone()),
        );
        assert_eq!(drive(&mut b, &dag, &initial), 6);
        // ExactGreedy + LevelBased (oracle as the heuristic)
        let mut c = Duo::new(ExactGreedy::new(dag.clone()), LevelBased::new(dag.clone()));
        assert_eq!(drive(&mut c, &dag, &initial), 6);
    }

    #[test]
    fn secondary_rescues_primary_barrier() {
        let dag = ladder();
        let mut s = Duo::new(LevelBased::new(dag.clone()), LogicBlox::new(dag.clone()));
        s.start(&[NodeId(0), NodeId(1)]);
        let a = s.pop_ready().unwrap();
        let b = s.pop_ready().unwrap();
        // Complete one source, firing its level-1 child; the other source
        // still runs, stalling the LevelBased primary at the barrier.
        s.on_completed(a, &[NodeId(a.0 + 2)]);
        let rescued = s
            .pop_ready()
            .expect("secondary must find the safe cross-level task");
        assert_eq!(rescued, NodeId(a.0 + 2));
        s.on_completed(rescued, &[NodeId(rescued.0 + 2)]);
        s.on_completed(b, &[NodeId(b.0 + 2)]);
        while let Some(t) = s.pop_ready() {
            s.on_completed(t, &[]);
        }
        assert!(s.is_quiescent());
    }

    #[test]
    fn duo_is_nestable() {
        let dag = ladder();
        // (LB + LBX) + Signal: three-way combination via nesting.
        let inner = Duo::new(LevelBased::new(dag.clone()), LogicBlox::new(dag.clone()));
        let mut trio = Duo::new(inner, SignalPropagation::new(dag.clone()));
        assert_eq!(drive(&mut trio, &dag, &[NodeId(0), NodeId(1)]), 6);
        assert!(trio.name().contains("Duo(Duo("));
    }

    #[test]
    fn costs_aggregate_both_sides() {
        let dag = ladder();
        let mut s = Duo::new(LevelBased::new(dag.clone()), LogicBlox::new(dag.clone()));
        drive(&mut s, &dag, &[NodeId(0)]);
        let total = s.cost();
        let parts = s.primary().cost().plus(&s.secondary().cost());
        assert_eq!(total, parts);
        assert!(total.bucket_ops > 0, "primary worked");
    }
}
