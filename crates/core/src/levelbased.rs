//! The LevelBased scheduler (paper §III, analysed in §IV).
//!
//! Precomputation: node levels, already cached on the [`Dag`] (`O(V + E)`
//! time, `O(V)` space). At runtime the scheduler keeps active tasks in
//! per-level buckets and maintains a monotone cursor `cur` at the lowest
//! level with unfinished active tasks. By Lemma 1, *every* active task at
//! `cur` is safe, so readiness checks are O(1) bucket pops — the whole run
//! costs `O(n + L)` bucket operations (Theorem 2).
//!
//! The deliberate limitation (fixed by [`crate::lookahead`]): the cursor
//! does not advance past a level until every active task on it has
//! *completed*, so stragglers at a level idle the processors — the
//! Figure 2 / Theorem 9 `Θ(ML)` worst case.

use crate::cost::CostMeter;
use crate::scheduler::{NodeState, Scheduler, StateTable};
use incr_dag::{Dag, NodeId};
use std::sync::Arc;

/// LevelBased scheduler state. Create once per DAG; reuse across runs via
/// [`Scheduler::start`].
pub struct LevelBased {
    pub(crate) dag: Arc<Dag>,
    pub(crate) state: StateTable,
    /// Per level: activated, not yet dispatched (entries may be stale if a
    /// task was dispatched externally, e.g. by the look-ahead extension or
    /// the hybrid's other sub-scheduler; stale entries are skipped on pop).
    pub(crate) buckets: Vec<Vec<NodeId>>,
    /// Per level: activated, not yet completed.
    pub(crate) unfinished: Vec<u32>,
    /// Lowest level that may still hold unfinished active tasks; advances
    /// monotonically.
    pub(crate) cur: u32,
    pub(crate) cost: CostMeter,
    /// Dispatched-but-uncompleted tasks (bounded by in-flight parallelism);
    /// the look-ahead extension needs them for its blocking set.
    pub(crate) running: Vec<NodeId>,
    /// High-water mark of simultaneously tracked active tasks (the `O(n)`
    /// space bound of Theorem 2 counts these).
    pub(crate) peak_tracked: usize,
    /// Levels whose bucket/unfinished slot was written this run — the only
    /// ones the next [`Scheduler::start`] needs to clear, making restarts
    /// O(levels touched by the previous update) instead of O(L).
    pub(crate) touched: Vec<u32>,
    /// `level_stamp[l] == state.generation()` ⇔ `l` is already in `touched`.
    pub(crate) level_stamp: Vec<u32>,
}

impl LevelBased {
    pub fn new(dag: Arc<Dag>) -> Self {
        let n = dag.node_count();
        let l = dag.num_levels() as usize;
        LevelBased {
            dag,
            state: StateTable::new(n),
            buckets: vec![Vec::new(); l],
            unfinished: vec![0; l],
            cur: 0,
            cost: CostMeter::default(),
            running: Vec::new(),
            peak_tracked: 0,
            touched: Vec::new(),
            level_stamp: vec![0; l],
        }
    }

    pub(crate) fn activate(&mut self, v: NodeId) {
        if self.state.activate(v) {
            self.cost.activations += 1;
            self.cost.bucket_ops += 1;
            let l = self.dag.level(v) as usize;
            let gen = self.state.generation();
            if self.level_stamp[l] != gen {
                self.level_stamp[l] = gen;
                self.touched.push(l as u32);
            }
            self.buckets[l].push(v);
            self.unfinished[l] += 1;
            self.peak_tracked = self.peak_tracked.max(self.state.active_unexecuted());
        }
    }

    /// Record a dispatch (state transition + running list).
    pub(crate) fn dispatch(&mut self, v: NodeId) {
        self.state.dispatch(v);
        self.running.push(v);
    }

    /// Advance the cursor past fully-completed levels.
    pub(crate) fn advance_cursor(&mut self) {
        let l = self.buckets.len() as u32;
        while self.cur < l && self.unfinished[self.cur as usize] == 0 {
            self.cur += 1;
            self.cost.bucket_ops += 1;
        }
    }

    /// Pop the next safe task at the current level, or `None` if the level
    /// is drained-but-running (the barrier) or everything is done.
    pub(crate) fn pop_at_cursor(&mut self) -> Option<NodeId> {
        loop {
            self.advance_cursor();
            if (self.cur as usize) >= self.buckets.len() {
                return None;
            }
            let bucket = &mut self.buckets[self.cur as usize];
            while let Some(v) = bucket.pop() {
                self.cost.bucket_ops += 1;
                // Skip entries dispatched externally (look-ahead / hybrid).
                if self.state.get(v) == NodeState::Active {
                    self.state.dispatch(v);
                    self.running.push(v);
                    return Some(v);
                }
            }
            if self.unfinished[self.cur as usize] > 0 {
                // Drained of poppable tasks but stragglers are running:
                // the LevelBased barrier.
                return None;
            }
            // Every task at this level completed via external dispatch;
            // the cursor can move on.
        }
    }

    /// The current cursor level (for the look-ahead extension and tests).
    pub fn current_level(&self) -> u32 {
        self.cur
    }

    /// High-water mark of tracked active tasks (Theorem 2 space check).
    pub fn peak_tracked(&self) -> usize {
        self.peak_tracked
    }
}

impl Scheduler for LevelBased {
    fn name(&self) -> &str {
        "LevelBased"
    }

    fn start(&mut self, initial_active: &[NodeId]) {
        // O(active of the previous run): only levels the previous update
        // wrote (every bucket push and `unfinished` bump goes through
        // `activate`, which records the level) need clearing.
        for &l in &self.touched {
            self.buckets[l as usize].clear();
            self.unfinished[l as usize] = 0;
        }
        self.touched.clear();
        self.state.reset();
        if self.state.generation() == 1 {
            // Stamp generation wrapped: old stamps could alias the new one.
            self.level_stamp.fill(0);
        }
        self.cur = 0;
        self.cost = CostMeter::default();
        self.running.clear();
        self.peak_tracked = 0;
        for &v in initial_active {
            self.activate(v);
        }
    }

    fn on_completed(&mut self, v: NodeId, fired: &[NodeId]) {
        self.cost.completions += 1;
        self.state.complete(v);
        if let Some(i) = self.running.iter().position(|&r| r == v) {
            self.running.swap_remove(i);
        }
        self.unfinished[self.dag.level(v) as usize] -= 1;
        for &c in fired {
            debug_assert!(
                self.dag.level(c) > self.cur || self.unfinished[self.cur as usize] > 0,
                "activation below the cursor would violate Lemma 1"
            );
            self.activate(c);
        }
    }

    fn pop_ready(&mut self) -> Option<NodeId> {
        self.cost.pops += 1;
        self.pop_at_cursor()
    }

    fn pop_batch(&mut self, out: &mut Vec<NodeId>, max: usize) -> usize {
        // Drain the current level bucket (by Lemma 1 everything in it is
        // safe) in one trait crossing; one `pops` charge per batch, the
        // per-node bucket_ops charges are identical to the serial path.
        self.cost.pops += 1;
        let before = out.len();
        while out.len() - before < max {
            match self.pop_at_cursor() {
                Some(t) => out.push(t),
                None => break,
            }
        }
        out.len() - before
    }

    fn is_quiescent(&self) -> bool {
        self.state.active_unexecuted() == 0
    }

    fn cost(&self) -> CostMeter {
        self.cost
    }

    fn space_bytes(&self) -> usize {
        let entries: usize = self.buckets.iter().map(Vec::len).sum();
        (entries + self.running.len()) * std::mem::size_of::<NodeId>()
            + self.unfinished.len() * std::mem::size_of::<u32>()
            + self.state.bytes()
    }

    fn precompute_bytes(&self) -> usize {
        // One level number per node of G (paper §II-B: "the scheduler only
        // needs to store one number for each node").
        self.dag.node_count() * std::mem::size_of::<u32>()
    }

    fn on_external_dispatch(&mut self, v: NodeId) {
        if self.state.get(v) == NodeState::Active {
            // The bucket entry becomes stale and is skipped at pop time;
            // `unfinished` still gates the cursor until completion arrives.
            self.dispatch(v);
        }
    }

    fn gauges(&self) -> Vec<(&'static str, i64)> {
        let frontier_depth = self
            .buckets
            .get(self.cur as usize)
            .map_or(0, |b| b.len() as i64);
        vec![
            ("lb.level_frontier", self.cur as i64),
            ("lb.frontier_bucket_depth", frontier_depth),
            ("lb.tracked_active", self.state.active_unexecuted() as i64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incr_dag::DagBuilder;

    /// 0 -> {1,2} -> 3 ; plus an independent source 4 -> 5.
    fn dag() -> Arc<Dag> {
        let mut b = DagBuilder::new(6);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3), (4, 5)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn pops_level_by_level() {
        let mut s = LevelBased::new(dag());
        s.start(&[NodeId(0), NodeId(4)]);
        // Level 0: both sources poppable before anything completes.
        let a = s.pop_ready().unwrap();
        let b = s.pop_ready().unwrap();
        assert_eq!(s.dag.level(a), 0);
        assert_eq!(s.dag.level(b), 0);
        assert!(s.pop_ready().is_none(), "level 0 drained; barrier");
        s.on_completed(a, &[]);
        s.on_completed(b, &[]);
        assert!(s.is_quiescent());
    }

    #[test]
    fn barrier_blocks_next_level_until_completion() {
        let mut s = LevelBased::new(dag());
        s.start(&[NodeId(0)]);
        let t0 = s.pop_ready().unwrap();
        assert_eq!(t0, NodeId(0));
        s.on_completed(t0, &[NodeId(1), NodeId(2)]);
        let t1 = s.pop_ready().unwrap();
        let t2 = s.pop_ready().unwrap();
        assert_eq!(s.dag.level(t1), 1);
        assert_eq!(s.dag.level(t2), 1);
        // Complete only one of the two level-1 tasks and fire level 2.
        s.on_completed(t1, &[NodeId(3)]);
        assert!(
            s.pop_ready().is_none(),
            "level-1 straggler must block level 2 (the LevelBased barrier)"
        );
        s.on_completed(t2, &[NodeId(3)]);
        assert_eq!(s.pop_ready(), Some(NodeId(3)));
        s.on_completed(NodeId(3), &[]);
        assert!(s.is_quiescent());
    }

    #[test]
    fn duplicate_activations_ignored() {
        let mut s = LevelBased::new(dag());
        s.start(&[NodeId(0)]);
        let t0 = s.pop_ready().unwrap();
        // Both parents fire node 3's input eventually; here both level-1
        // tasks fire the same child.
        s.on_completed(t0, &[NodeId(1), NodeId(2)]);
        let a = s.pop_ready().unwrap();
        let b = s.pop_ready().unwrap();
        s.on_completed(a, &[NodeId(3)]);
        s.on_completed(b, &[NodeId(3)]);
        assert_eq!(s.pop_ready(), Some(NodeId(3)));
        assert!(s.pop_ready().is_none());
        s.on_completed(NodeId(3), &[]);
        assert!(s.is_quiescent());
        assert_eq!(s.state.activated_total(), 4);
    }

    #[test]
    fn cost_is_linear_in_n_plus_l() {
        // Chain of 200: n = 200 active, L = 200 levels.
        let n = 200u32;
        let mut b = DagBuilder::new(n as usize);
        for i in 1..n {
            b.add_edge(NodeId(i - 1), NodeId(i));
        }
        let dag = Arc::new(b.build().unwrap());
        let mut s = LevelBased::new(dag);
        s.start(&[NodeId(0)]);
        let mut done = 0u32;
        while let Some(t) = {
            
            s.pop_ready()
        } {
            let fired: Vec<NodeId> = if t.0 + 1 < n { vec![NodeId(t.0 + 1)] } else { vec![] };
            s.on_completed(t, &fired);
            done += 1;
        }
        assert_eq!(done, n);
        let c = s.cost();
        // Bucket ops: one push + one pop per node + <= L cursor advances.
        assert!(
            c.bucket_ops <= 3 * n as u64 + n as u64,
            "bucket_ops {} not O(n + L)",
            c.bucket_ops
        );
        assert_eq!(c.scan_steps, 0);
        assert_eq!(c.ancestor_queries, 0);
    }

    #[test]
    fn peak_tracked_counts_active_set() {
        let mut s = LevelBased::new(dag());
        s.start(&[NodeId(0)]);
        let t = s.pop_ready().unwrap();
        s.on_completed(t, &[NodeId(1), NodeId(2)]);
        assert_eq!(s.peak_tracked(), 2);
    }

    #[test]
    fn restart_resets_state() {
        let mut s = LevelBased::new(dag());
        s.start(&[NodeId(0)]);
        let t = s.pop_ready().unwrap();
        s.on_completed(t, &[]);
        assert!(s.is_quiescent());
        s.start(&[NodeId(4)]);
        assert_eq!(s.pop_ready(), Some(NodeId(4)));
        assert_eq!(s.cost().pops, 1);
    }

    #[test]
    fn restart_clears_stale_external_dispatch_leftovers() {
        let mut s = LevelBased::new(dag());
        s.start(&[NodeId(0)]);
        // Externally dispatch node 0: its bucket entry goes stale and the
        // run is abandoned mid-flight (never completed).
        s.on_external_dispatch(NodeId(0));
        // The restart must clear that leftover entry even though the level
        // was never drained, and the node must be schedulable again.
        s.start(&[NodeId(0)]);
        assert_eq!(s.pop_ready(), Some(NodeId(0)));
        s.on_completed(NodeId(0), &[]);
        assert!(s.is_quiescent());
    }

    #[test]
    fn pop_batch_drains_level_and_respects_barrier() {
        let mut s = LevelBased::new(dag());
        s.start(&[NodeId(0)]);
        let mut out = Vec::new();
        assert_eq!(s.pop_batch(&mut out, 16), 1);
        s.on_completed(NodeId(0), &[NodeId(1), NodeId(2)]);
        out.clear();
        // Both level-1 tasks come out in one batch; level 2 stays behind
        // the barrier until they complete.
        assert_eq!(s.pop_batch(&mut out, 16), 2);
        assert_eq!(s.pop_batch(&mut out, 16), 0);
        s.on_completed(out[0], &[NodeId(3)]);
        s.on_completed(out[1], &[NodeId(3)]);
        out.clear();
        assert_eq!(s.pop_batch(&mut out, 16), 1);
        assert_eq!(out, vec![NodeId(3)]);
    }
}
